//! The blob-value layer: variable-length `[u8]` payloads over the untouched
//! `u64 → u64` machinery.
//!
//! The ASCYLIB structures (and [`ShardedMap`] over them) move 64-bit values
//! — enough for the paper's figures, not for a KV store that must hold real
//! payloads. Instead of rewriting 18 structures, this module stores payloads
//! *outside* the structures and indexes them with 64-bit **handles**:
//!
//! * [`ValueArena`] owns the payload memory. Each blob is a length-prefixed
//!   allocation from `ascylib-ssmem` (`alloc_raw`/`retire_raw`), so blob
//!   lifetime rides the same epoch machinery that protects the structures'
//!   own nodes: a blob retired by a `DEL`/overwrite is not reused until
//!   every thread that could still be copying it has left its operation.
//! * [`BlobMap`] is the safe facade: `set` writes the blob, publishes its
//!   handle through the sharded map, and retires the displaced blob;
//!   `get`/`multi_get`/`scan` fetch handles and copy payloads out **under
//!   one [`ssmem::protect`] guard**, so a concurrent delete can never free a
//!   blob mid-read. Readers therefore never observe torn, truncated, or
//!   reused payloads — only values that were fully written before publish.
//!
//! # Consistency
//!
//! Per-key operations keep the shard layer's linearizability with one
//! deliberate exception: an **overwrite** (`set` on a present key) is
//! remove-then-insert on the index, so a concurrent reader can observe a
//! transient miss between the two steps. Readers never see a mix of old and
//! new payload bytes — each blob is immutable after publish.
//!
//! # Teardown
//!
//! Hash backings cannot enumerate their keys, so each arena keeps a
//! write-path-only ledger of live handles (one mutex per *shard*, touched
//! only by `set`/`del` — reads stay asynchronized). Dropping the map frees
//! every live blob through the ledger; blobs already retired are owned by
//! the epoch machinery and freed by its collector.

use std::alloc::Layout;
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ascylib::api::ConcurrentMap;
use ascylib::ordered::OrderedMap;
use ascylib_ssmem as ssmem;
use crossbeam_utils::CachePadded;

use crate::hotkey::{
    FillTicket, FrontRead, HotKeyConfig, HotKeyEngine, HotKeyStatsSnapshot, HotOp, HotOpKind,
    HotOpResult,
};
use crate::map::ShardedMap;

/// Bytes of blob header (the payload length, stored as a `u64` so the
/// retire path can reconstruct the allocation layout from the handle alone).
const HEADER: usize = std::mem::size_of::<u64>();

/// Allocation sizes are rounded up to this granularity so the ssmem reuse
/// pool sees a bounded number of size classes (two payloads within the same
/// 64-byte bucket recycle each other's memory).
const SIZE_CLASS: usize = 64;

/// The allocation layout backing a blob of `len` payload bytes. Must be a
/// pure function of `len`: `store` and `retire` both derive it, and the
/// layouts have to match for the allocator.
fn blob_layout(len: usize) -> Layout {
    let size = (HEADER + len).div_ceil(SIZE_CLASS) * SIZE_CLASS;
    Layout::from_size_align(size, HEADER).expect("valid blob layout")
}

/// Traffic counters of one arena (monotone, `Relaxed`: independent event
/// counts with no ordering obligations, as everywhere else in this crate).
#[derive(Debug, Default)]
struct ArenaCounters {
    blobs_stored: AtomicU64,
    blobs_retired: AtomicU64,
    bytes_stored: AtomicU64,
    bytes_retired: AtomicU64,
}

/// A point-in-time copy of one arena's counters (or a sum over arenas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStatsSnapshot {
    /// Blobs written through [`ValueArena::store`].
    pub blobs_stored: u64,
    /// Blobs retired (displaced by an overwrite or deleted).
    pub blobs_retired: u64,
    /// Payload bytes written (headers and size-class padding excluded).
    pub bytes_stored: u64,
    /// Payload bytes retired.
    pub bytes_retired: u64,
}

impl ArenaStatsSnapshot {
    /// Blobs currently live (stored minus retired).
    pub fn live_blobs(&self) -> u64 {
        self.blobs_stored.saturating_sub(self.blobs_retired)
    }

    /// Payload bytes currently live.
    pub fn live_bytes(&self) -> u64 {
        self.bytes_stored.saturating_sub(self.bytes_retired)
    }

    /// Adds another snapshot (aggregation across shards).
    pub fn merge(&mut self, other: &ArenaStatsSnapshot) {
        self.blobs_stored = self.blobs_stored.saturating_add(other.blobs_stored);
        self.blobs_retired = self.blobs_retired.saturating_add(other.blobs_retired);
        self.bytes_stored = self.bytes_stored.saturating_add(other.bytes_stored);
        self.bytes_retired = self.bytes_retired.saturating_add(other.bytes_retired);
    }
}

/// A payload arena: length-prefixed `[u8]` blobs in ssmem-managed memory,
/// addressed by opaque 64-bit handles that fit wherever a `u64` value goes.
///
/// The arena does not synchronize readers itself — it inherits ssmem's
/// epoch protocol. The safety rules (enforced by [`BlobMap`], stated here
/// for direct users):
///
/// * a handle may be [`read`](Self::read_into) only under an
///   [`ssmem::protect`] guard created *before* the handle was fetched from
///   whatever shared index published it;
/// * a handle must be [`retire`](Self::retire)d at most once, and only
///   after it has been unlinked from every shared index.
#[derive(Debug, Default)]
pub struct ValueArena {
    /// Live handles, maintained by the write path only, so teardown can
    /// free payloads without requiring key enumeration from the backing.
    live: Mutex<HashSet<u64>>,
    stats: CachePadded<ArenaCounters>,
}

impl ValueArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `value` into a fresh length-prefixed blob and returns its
    /// handle. The blob is immutable from here on (readers rely on it).
    pub fn store(&self, value: &[u8]) -> u64 {
        let layout = blob_layout(value.len());
        let ptr = ssmem::alloc_raw(layout);
        // SAFETY: `ptr` is a fresh (or recycled past its grace period)
        // allocation of `layout`, which holds HEADER + value.len() bytes;
        // nothing else references it until we publish the handle.
        unsafe {
            (ptr as *mut u64).write(value.len() as u64);
            ptr.add(HEADER).copy_from_nonoverlapping(value.as_ptr(), value.len());
        }
        let handle = ptr as u64;
        self.live.lock().expect("arena ledger poisoned").insert(handle);
        self.stats.blobs_stored.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_stored.fetch_add(value.len() as u64, Ordering::Relaxed);
        handle
    }

    /// Payload length of a live (or protected) blob.
    ///
    /// # Safety
    ///
    /// Same contract as [`read_into`](Self::read_into).
    pub unsafe fn len_of(&self, handle: u64) -> usize {
        // SAFETY: forwarded caller contract; the header is the first word.
        unsafe { (handle as *const u64).read() as usize }
    }

    /// Appends the blob's payload bytes to `out`.
    ///
    /// # Safety
    ///
    /// The caller must hold an [`ssmem::protect`] guard that was created
    /// before `handle` was fetched from the shared index, and the handle
    /// must have been produced by [`store`](Self::store) on this or any
    /// other arena sharing the ssmem runtime.
    pub unsafe fn read_into(&self, handle: u64, out: &mut Vec<u8>) {
        let ptr = handle as *const u8;
        // SAFETY: the guard (caller contract) keeps the blob from being
        // reclaimed; blobs are immutable after publish, so the header and
        // payload read race with nothing.
        unsafe {
            let len = (ptr as *const u64).read() as usize;
            out.extend_from_slice(std::slice::from_raw_parts(ptr.add(HEADER), len));
        }
    }

    /// Retires a blob: its memory returns to the ssmem pool once every
    /// operation concurrent with this call has finished.
    ///
    /// # Safety
    ///
    /// `handle` must come from [`store`](Self::store), must already be
    /// unlinked from every shared index, and must not be retired twice.
    pub unsafe fn retire(&self, handle: u64) {
        let ptr = handle as *mut u8;
        // SAFETY: the handle is unlinked (caller contract), so this thread
        // owns the right to read its header and retire it.
        let len = unsafe { (ptr as *const u64).read() as usize };
        self.live.lock().expect("arena ledger poisoned").remove(&handle);
        self.stats.blobs_retired.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_retired.fetch_add(len as u64, Ordering::Relaxed);
        // SAFETY: unlinked and never retired before (caller contract);
        // layout is the same pure function of `len` used at allocation.
        unsafe { ssmem::retire_raw(ptr, blob_layout(len)) };
    }

    /// A copy of the arena's counters.
    pub fn stats(&self) -> ArenaStatsSnapshot {
        ArenaStatsSnapshot {
            blobs_stored: self.stats.blobs_stored.load(Ordering::Relaxed),
            blobs_retired: self.stats.blobs_retired.load(Ordering::Relaxed),
            bytes_stored: self.stats.bytes_stored.load(Ordering::Relaxed),
            bytes_retired: self.stats.bytes_retired.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ValueArena {
    fn drop(&mut self) {
        // `&mut self`: no concurrent operations; every handle still in the
        // ledger is live (retired ones were removed at retire time and are
        // owned by the epoch collector).
        let live = std::mem::take(self.live.get_mut().expect("arena ledger poisoned"));
        for handle in live {
            let ptr = handle as *mut u8;
            // SAFETY: live blob, unreachable by any thread after Drop began.
            unsafe {
                let len = (ptr as *const u64).read() as usize;
                ssmem::dealloc_raw_immediate(ptr, blob_layout(len));
            }
        }
    }
}

thread_local! {
    /// Scratch handle buffer for `multi_get`, so the server's MGET hot path
    /// performs no per-batch allocation for the handle pass.
    static HANDLE_SCRATCH: RefCell<Vec<Option<u64>>> = const { RefCell::new(Vec::new()) };
    /// Recycled per-value buffers: `multi_get_into` harvests the previous
    /// batch's `Vec<u8>`s from the caller's result buffer before clearing
    /// it, so a steady stream of batches reuses value capacity instead of
    /// allocating one vector per hit per frame.
    static VALUE_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Most recycled value buffers kept per thread (matches the largest batch
/// the serving tier dispatches at once).
const VALUE_POOL_CAP: usize = 1024;

/// Takes a recycled value buffer (empty) or a fresh one.
fn pool_take() -> Vec<u8> {
    VALUE_POOL.with(|pool| pool.borrow_mut().pop()).unwrap_or_default()
}

/// Returns an unneeded buffer to the pool for the next hit to reuse.
fn pool_put(mut value: Vec<u8>) {
    VALUE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < VALUE_POOL_CAP {
            value.clear();
            pool.push(value);
        }
    });
}

/// Harvests the previous batch's value buffers out of a result vector into
/// the pool (capacity reuse across a stream of batches).
fn harvest_buffers(out: &mut [Option<Vec<u8>>]) {
    VALUE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        for slot in out.iter_mut() {
            if pool.len() >= VALUE_POOL_CAP {
                break;
            }
            if let Some(mut value) = slot.take() {
                value.clear();
                pool.push(value);
            }
        }
    });
}

/// Variable-length byte values over a [`ShardedMap`] of any backing: the
/// map stores arena handles, the per-shard [`ValueArena`]s store payloads,
/// and every read copies out under an epoch guard.
///
/// `get`/`multi_get`/`scan` have **copy-out** semantics (the caller's
/// buffer is cleared and refilled), `set` **overwrites** (unlike the raw
/// structures' insert-if-absent — the displaced blob is retired), and
/// range scans are available when the backing is ordered.
pub struct BlobMap<M> {
    map: ShardedMap<M>,
    arenas: Box<[ValueArena]>,
    /// The blob map's *own* hot-key engine: it caches **payload bytes**
    /// (never arena handles — a cached handle could outlive a retire and
    /// dangle), so the inner index stays engine-less and the front cache
    /// sits above the epoch machinery entirely.
    hot: Option<Box<HotKeyEngine>>,
}

impl<M: ConcurrentMap> BlobMap<M> {
    /// Builds a blob map over `shards` instances of the backing; `make(i)`
    /// constructs the `i`-th shard.
    ///
    /// # Panics
    ///
    /// If `shards` is zero.
    pub fn new(shards: usize, make: impl FnMut(usize) -> M) -> Self {
        BlobMap {
            map: ShardedMap::new(shards, make),
            arenas: (0..shards).map(|_| ValueArena::new()).collect(),
            hot: None,
        }
    }

    /// Like [`new`](Self::new), attaching a hot-key engine (see
    /// [`crate::hotkey`]): hot values up to
    /// [`crate::hotkey::FRONT_VALUE_CAP`] bytes are served from seqlock'd
    /// copies without touching the epoch guard, index, or arena, and hot
    /// writes delegate through a per-shard flat combiner. `cfg.k == 0`
    /// yields a plain map.
    pub fn with_hotkeys(shards: usize, cfg: HotKeyConfig, make: impl FnMut(usize) -> M) -> Self {
        let mut map = Self::new(shards, make);
        map.hot = HotKeyEngine::new(shards, cfg);
        map
    }

    /// The attached hot-key engine, if any.
    pub fn hotkey_engine(&self) -> Option<&HotKeyEngine> {
        self.hot.as_deref()
    }

    /// Hot-key engine counters, when an engine is attached.
    pub fn hotkey_stats(&self) -> Option<HotKeyStatsSnapshot> {
        self.hot.as_deref().map(HotKeyEngine::stats)
    }

    /// Current top-k hot keys (empty without an engine).
    pub fn hot_keys(&self) -> Vec<(u64, u64)> {
        self.hot.as_deref().map(HotKeyEngine::hot_keys).unwrap_or_default()
    }

    /// Applies a delegated op against the backing (index + arena). Called
    /// by whichever thread combines; must not touch the front cache (the
    /// engine does that, version-guarded, around this call).
    fn apply_hot(&self, op: &HotOp) -> HotOpResult {
        match op.kind {
            HotOpKind::Set => {
                // The publisher already stored the blob; publish its handle
                // (same loop as the plain `set` path).
                let arena = self.arena_of(op.key);
                let mut created = true;
                loop {
                    if self.map.insert(op.key, op.val_u64) {
                        return HotOpResult { ok: created, old: 0 };
                    }
                    if let Some(old) = self.map.remove(op.key) {
                        created = false;
                        // SAFETY: `remove` returned `old` to this thread
                        // alone; unlinked, retired exactly once.
                        unsafe { arena.retire(old) };
                    }
                }
            }
            HotOpKind::Del => match self.map.remove(op.key) {
                Some(handle) => {
                    // SAFETY: unlinked by the remove, returned only to us.
                    unsafe { self.arena_of(op.key).retire(handle) };
                    HotOpResult { ok: true, old: 0 }
                }
                None => HotOpResult { ok: false, old: 0 },
            },
            HotOpKind::Insert => unreachable!("BlobMap never publishes u64 inserts"),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    /// The shard (and arena) index `key` routes to — the same routing the
    /// data path uses, exposed so observability layers can attribute an
    /// operation to a contended shard.
    pub fn shard_of(&self, key: u64) -> usize {
        self.map.shard_of(key)
    }

    #[inline]
    fn arena_of(&self, key: u64) -> &ValueArena {
        &self.arenas[self.map.shard_of(key)]
    }

    /// Keys currently present (same consistency caveat as
    /// [`ConcurrentMap::size`]).
    pub fn len(&self) -> usize {
        self.map.size()
    }

    /// `true` if no keys are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Copies the value of `key` into `out` (cleared first); `true` if the
    /// key was present. With a hot-key engine attached, fronted keys are
    /// answered from the engine's value copy (never older than the last
    /// completed write — see [`crate::hotkey`]) without touching the epoch
    /// guard, the index, or the arena.
    pub fn get(&self, key: u64, out: &mut Vec<u8>) -> bool {
        out.clear();
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            match hot.read(key, out) {
                // Front-served reads skip the shard-stats RMWs (that's
                // the point of the front path); `total_stats` folds the
                // engine's own hit/absent counters back in.
                FrontRead::Hit => return true,
                FrontRead::Absent => return false,
                FrontRead::Pending(ticket) => {
                    let found = self.get_backing(key, out);
                    hot.fill(&ticket, found.then_some(out.as_slice()));
                    return found;
                }
                FrontRead::Miss => {}
            }
        }
        self.get_backing(key, out)
    }

    /// The engine-less read path: epoch guard, index search, arena copy.
    fn get_backing(&self, key: u64, out: &mut Vec<u8>) -> bool {
        out.clear();
        // Guard before the handle fetch: a concurrent DEL/overwrite retires
        // the blob, and this guard is what keeps it readable until we're
        // done copying.
        let _guard = ssmem::protect();
        match self.map.search(key) {
            Some(handle) => {
                // SAFETY: guard created before the fetch (above).
                unsafe { self.arena_of(key).read_into(handle, out) };
                true
            }
            None => false,
        }
    }

    /// Like [`get`](Self::get), returning a fresh vector.
    pub fn get_owned(&self, key: u64) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.get(key, &mut out).then_some(out)
    }

    /// `true` if the key is present.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains(key)
    }

    /// Stores `value` under `key`, overwriting any previous value (the
    /// displaced blob is retired). Returns `true` if the key was newly
    /// created, `false` if an existing value was replaced. Writes to a
    /// fronted key delegate through the flat combiner, which refreshes the
    /// front-cache copy write-through after the backing publish.
    pub fn set(&self, key: u64, value: &[u8]) -> bool {
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            if hot.fronted(key) {
                // Store the blob up front (arena stores are uncontended);
                // only the index publish + slot refresh is delegated.
                let handle = self.arena_of(key).store(value);
                let res =
                    hot.delegate(HotOp::set(key, handle, value), &mut |op| self.apply_hot(op));
                return res.ok;
            }
            let created = self.set_backing(key, value);
            // The key may have been promoted while we wrote: drop any
            // cached copy so no reader sees a value older than this write.
            hot.poison(key);
            return created;
        }
        self.set_backing(key, value)
    }

    fn set_backing(&self, key: u64, value: &[u8]) -> bool {
        let arena = self.arena_of(key);
        let handle = arena.store(value);
        let mut created = true;
        loop {
            if self.map.insert(key, handle) {
                return created;
            }
            if let Some(old) = self.map.remove(key) {
                created = false;
                // SAFETY: `remove` returned `old` to this thread alone, so
                // it is unlinked and retired exactly once.
                unsafe { arena.retire(old) };
            }
            // Lost a race with a concurrent writer on this key in either
            // branch; retry until our handle is published.
        }
    }

    /// Removes `key`; `true` if it was present (the blob is retired). Same
    /// fronted-key handling as [`set`](Self::set).
    pub fn del(&self, key: u64) -> bool {
        if let Some(hot) = &self.hot {
            hot.record_access(key);
            if hot.fronted(key) {
                return hot.delegate(HotOp::del(key), &mut |op| self.apply_hot(op)).ok;
            }
            let removed = self.del_backing(key);
            hot.poison(key);
            return removed;
        }
        self.del_backing(key)
    }

    fn del_backing(&self, key: u64) -> bool {
        match self.map.remove(key) {
            Some(handle) => {
                // SAFETY: unlinked by the remove, returned only to us.
                unsafe { self.arena_of(key).retire(handle) };
                true
            }
            None => false,
        }
    }

    /// Batched lookup with copy-out: clears `out` and refills it with
    /// per-key answers in input order. With a hot-key engine attached,
    /// fronted keys are answered from their front-cache copies and only
    /// the remainder takes the batched backing path (one epoch guard).
    pub fn multi_get_into(&self, keys: &[u64], out: &mut Vec<Option<Vec<u8>>>) {
        let Some(hot) = self.hot.as_deref() else {
            self.multi_get_backing(keys, out);
            return;
        };
        harvest_buffers(out);
        out.clear();
        out.resize(keys.len(), None);
        // `(input position, key, fill lease)` of every key the front cache
        // could not answer; they take the batched backing path below.
        let mut rest: Vec<(usize, u64, Option<FillTicket>)> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            hot.record_access(key);
            let mut value = pool_take();
            match hot.read(key, &mut value) {
                // As in `get`: front-served keys skip the shard-stats
                // RMWs; `total_stats` folds the engine counters back in.
                FrontRead::Hit => {
                    out[i] = Some(value);
                }
                FrontRead::Absent => {
                    pool_put(value);
                }
                FrontRead::Pending(ticket) => {
                    pool_put(value);
                    rest.push((i, key, Some(ticket)));
                }
                FrontRead::Miss => {
                    pool_put(value);
                    rest.push((i, key, None));
                }
            }
        }
        if rest.is_empty() {
            return;
        }
        HANDLE_SCRATCH.with(|scratch| {
            let mut handles = scratch.borrow_mut();
            let _guard = ssmem::protect();
            let rest_keys: Vec<u64> = rest.iter().map(|&(_, k, _)| k).collect();
            self.map.multi_get_into(&rest_keys, &mut handles);
            for (&(pos, key, ref ticket), handle) in rest.iter().zip(handles.iter()) {
                let value = handle.map(|h| {
                    let mut value = pool_take();
                    // SAFETY: guard created before the batched fetch.
                    unsafe { self.arena_of(key).read_into(h, &mut value) };
                    value
                });
                if let Some(ticket) = ticket {
                    hot.fill(ticket, value.as_deref());
                }
                out[pos] = value;
            }
        });
    }

    /// The engine-less batched read path (also serves the engine path's
    /// front-cache misses).
    fn multi_get_backing(&self, keys: &[u64], out: &mut Vec<Option<Vec<u8>>>) {
        // Harvest the previous batch's value buffers before clearing, so
        // repeated batches through one result buffer stop allocating per
        // hit once capacities have warmed up.
        harvest_buffers(out);
        out.clear();
        HANDLE_SCRATCH.with(|scratch| {
            let mut handles = scratch.borrow_mut();
            let _guard = ssmem::protect();
            self.map.multi_get_into(keys, &mut handles);
            out.reserve(handles.len());
            for (&key, handle) in keys.iter().zip(handles.iter()) {
                out.push(handle.map(|h| {
                    let mut value = VALUE_POOL
                        .with(|pool| pool.borrow_mut().pop())
                        .unwrap_or_default();
                    // SAFETY: guard created before the batched fetch.
                    unsafe { self.arena_of(key).read_into(h, &mut value) };
                    value
                }));
            }
        });
    }

    /// Allocating wrapper over [`multi_get_into`](Self::multi_get_into).
    pub fn multi_get(&self, keys: &[u64]) -> Vec<Option<Vec<u8>>> {
        let mut out = Vec::new();
        self.multi_get_into(keys, &mut out);
        out
    }

    /// Batched overwrite in input order; `result[i]` tells whether
    /// `entries[i]` created its key. Per-key semantics are exactly a loop
    /// of [`set`](Self::set) calls (a duplicate key within one batch: later
    /// occurrences overwrite earlier ones).
    pub fn multi_set<B: AsRef<[u8]>>(&self, entries: &[(u64, B)]) -> Vec<bool> {
        entries.iter().map(|(k, v)| self.set(*k, v.as_ref())).collect()
    }

    /// Per-shard payload statistics.
    pub fn arena_stats(&self) -> Vec<ArenaStatsSnapshot> {
        self.arenas.iter().map(|a| a.stats()).collect()
    }

    /// Payload statistics aggregated over all shards.
    pub fn total_arena_stats(&self) -> ArenaStatsSnapshot {
        let mut total = ArenaStatsSnapshot::default();
        for a in self.arenas.iter() {
            total.merge(&a.stats());
        }
        total
    }

    /// Traffic counters of the underlying sharded index, plus the reads
    /// the hot-key front cache answered without touching a shard (folded
    /// into `searches`/`hits` here so a fronted GET still counts as a
    /// search; the per-shard snapshots deliberately exclude them).
    pub fn total_stats(&self) -> crate::stats::ShardStatsSnapshot {
        let mut total = self.map.total_stats();
        if let Some(h) = self.hotkey_stats() {
            total.searches = total.searches.saturating_add(h.front_hits + h.front_absent);
            total.hits = total.hits.saturating_add(h.front_hits);
        }
        total
    }
}

impl<M: OrderedMap> BlobMap<M> {
    /// Up to `n` `(key, value)` pairs with key `>= from` in ascending key
    /// order, values copied out. Inherits the non-snapshot scan semantics
    /// of [`OrderedMap`] (each pair was present at some point during the
    /// scan; payloads are never torn).
    pub fn scan(&self, from: u64, n: usize) -> Vec<(u64, Vec<u8>)> {
        self.scan_bounded(from, n, usize::MAX)
    }

    /// Like [`scan`](Self::scan), additionally stopping once the copied
    /// payload bytes reach `max_bytes` (a *soft* cap: the value that
    /// crosses the budget is still included, so a scan over huge values
    /// always makes progress). Serving tiers use this to bound per-reply
    /// memory; callers page by resuming from the last returned key + 1.
    pub fn scan_bounded(
        &self,
        from: u64,
        n: usize,
        max_bytes: usize,
    ) -> Vec<(u64, Vec<u8>)> {
        // One guard across handle gather and payload copy-out.
        let _guard = ssmem::protect();
        let pairs = self.map.scan(from, n);
        let mut out = Vec::with_capacity(pairs.len());
        let mut copied = 0usize;
        for (key, handle) in pairs {
            let mut value = Vec::new();
            // SAFETY: guard created before the scan fetched the handle.
            unsafe { self.arena_of(key).read_into(handle, &mut value) };
            copied = copied.saturating_add(value.len());
            out.push((key, value));
            if copied >= max_bytes {
                break;
            }
        }
        out
    }
}

impl<M: ConcurrentMap> std::fmt::Debug for BlobMap<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlobMap")
            .field("shards", &self.shard_count())
            .field("len", &self.len())
            .field("payload", &self.total_arena_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascylib::hashtable::ClhtLb;
    use ascylib::skiplist::FraserOptSkipList;

    fn blob_map() -> BlobMap<FraserOptSkipList> {
        BlobMap::new(4, |_| FraserOptSkipList::new())
    }

    #[test]
    fn set_get_del_roundtrip_with_binary_payloads() {
        let map = blob_map();
        let payload = [0u8, 1, 2, b'\n', b'\r', 0, 255, 42];
        assert!(map.set(7, &payload));
        assert_eq!(map.len(), 1);
        let mut out = vec![9u8; 3]; // stale contents must be cleared
        assert!(map.get(7, &mut out));
        assert_eq!(out, payload);
        assert_eq!(map.get_owned(7), Some(payload.to_vec()));
        assert!(!map.get(8, &mut out));
        assert!(out.is_empty());
        assert!(map.del(7));
        assert!(!map.del(7));
        assert!(map.is_empty());
    }

    #[test]
    fn empty_and_large_values_roundtrip() {
        let map = blob_map();
        assert!(map.set(1, b""));
        assert_eq!(map.get_owned(1), Some(Vec::new()));
        let big = vec![0xA5u8; 64 * 1024];
        assert!(map.set(2, &big));
        assert_eq!(map.get_owned(2).unwrap(), big);
        let stats = map.total_arena_stats();
        assert_eq!(stats.live_blobs(), 2);
        assert_eq!(stats.live_bytes(), big.len() as u64);
    }

    #[test]
    fn overwrite_replaces_and_retires_the_old_blob() {
        let map = blob_map();
        assert!(map.set(5, b"first"), "fresh key creates");
        assert!(!map.set(5, b"second, longer value"), "overwrite reports replacement");
        assert_eq!(map.get_owned(5).unwrap(), b"second, longer value");
        assert_eq!(map.len(), 1);
        let stats = map.total_arena_stats();
        assert_eq!(stats.blobs_stored, 2);
        assert_eq!(stats.blobs_retired, 1);
        assert_eq!(stats.live_bytes(), b"second, longer value".len() as u64);
    }

    #[test]
    fn multi_ops_follow_input_order() {
        let map = blob_map();
        let outcomes = map.multi_set(&[
            (1, b"one".as_slice()),
            (2, b"two"),
            (1, b"uno"),
        ]);
        assert_eq!(outcomes, vec![true, true, false], "later duplicate overwrites");
        assert_eq!(
            map.multi_get(&[1, 3, 2, 1]),
            vec![
                Some(b"uno".to_vec()),
                None,
                Some(b"two".to_vec()),
                Some(b"uno".to_vec())
            ]
        );
        let mut out = Vec::new();
        map.multi_get_into(&[2], &mut out);
        assert_eq!(out, vec![Some(b"two".to_vec())]);
    }

    #[test]
    fn multi_get_into_recycles_value_buffers_across_batches() {
        let map = blob_map();
        map.set(1, &[0xAA; 300]);
        map.set(2, &[0xBB; 50]);
        let mut out = Vec::new();
        map.multi_get_into(&[1, 2, 3], &mut out);
        let first_ptr = out[0].as_ref().unwrap().as_ptr();
        assert_eq!(out[0].as_ref().unwrap(), &vec![0xAA; 300]);
        // The next batch (same thread, same result buffer) reuses the
        // harvested 300-byte buffer for a value that fits in it.
        map.multi_get_into(&[2, 1], &mut out);
        assert_eq!(out, vec![Some(vec![0xBB; 50]), Some(vec![0xAA; 300])]);
        let reused = out
            .iter()
            .flatten()
            .any(|v| std::ptr::eq(v.as_ptr(), first_ptr));
        assert!(reused, "warmed value capacity must be recycled, not reallocated");
    }

    #[test]
    fn scan_returns_key_ordered_payloads_across_shards() {
        let map = blob_map();
        for k in (2..=40u64).step_by(2) {
            map.set(k, format!("v{k}").as_bytes());
        }
        let got = map.scan(7, 4);
        assert_eq!(
            got,
            vec![
                (8, b"v8".to_vec()),
                (10, b"v10".to_vec()),
                (12, b"v12".to_vec()),
                (14, b"v14".to_vec())
            ]
        );
        assert!(map.scan(41, 8).is_empty());
    }

    #[test]
    fn scan_bounded_stops_at_the_payload_budget_but_always_progresses() {
        let map = blob_map();
        for k in 1..=10u64 {
            map.set(k, &[k as u8; 100]);
        }
        // Budget of 250 bytes: pairs of 100 bytes each — the third value
        // crosses the budget and is included (soft cap), then the scan
        // stops.
        let got = map.scan_bounded(1, 10, 250);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (1, vec![1u8; 100]));
        assert_eq!(got[2].0, 3);
        // A budget smaller than one value still returns that value.
        assert_eq!(map.scan_bounded(5, 10, 1).len(), 1);
        // Paging from the last key + 1 completes the sweep.
        let rest = map.scan_bounded(4, 10, usize::MAX);
        assert_eq!(rest.len(), 7);
        // No budget behaves like plain scan.
        assert_eq!(map.scan_bounded(1, 10, usize::MAX), map.scan(1, 10));
    }

    #[test]
    fn drop_frees_live_blobs_through_the_ledger() {
        // The hash backing cannot enumerate keys; the ledger must still
        // account (and free) every live blob. Observable here as exact
        // ledger bookkeeping; leaks would show up under ASan/valgrind runs.
        let map = BlobMap::new(3, |_| ClhtLb::with_capacity(64));
        for k in 1..=50u64 {
            map.set(k, &vec![k as u8; (k % 17) as usize]);
        }
        for k in 1..=20u64 {
            map.del(k);
        }
        for k in 10..=15u64 {
            map.set(k + 100, b"replacement");
        }
        let stats = map.total_arena_stats();
        assert_eq!(stats.live_blobs(), 36);
        let ledger_total: usize = map
            .arenas
            .iter()
            .map(|a| a.live.lock().unwrap().len())
            .sum();
        assert_eq!(ledger_total as u64, stats.live_blobs());
        drop(map); // frees the 36 live blobs via the ledger
    }

    #[test]
    fn works_over_hash_backings_too() {
        let map = BlobMap::new(2, |_| ClhtLb::with_capacity(128));
        for k in 1..=100u64 {
            assert!(map.set(k, &k.to_le_bytes()));
        }
        for k in 1..=100u64 {
            assert_eq!(map.get_owned(k).unwrap(), k.to_le_bytes());
        }
        assert_eq!(map.len(), 100);
    }
}
