//! Batched operations: group keys by shard, then dispatch shard by shard.
//!
//! A serving front-end rarely asks for one key at a time; it accumulates a
//! request batch and wants all answers. Dispatching a batch key-by-key
//! ping-pongs between shards (a router computation plus a cold structure
//! per key). Grouping first means each shard is visited once with all of its
//! keys — the shard's top-level cache lines (bucket array, list head, lock
//! words) are touched while still warm, and the per-visit routing cost is
//! amortized over the group.
//!
//! Batched operations are **not** atomic across keys: each key's operation
//! linearizes individually in its shard (the same guarantee a loop of
//! single-key calls gives, minus the cache misses). Results are returned in
//! the caller's input order regardless of the dispatch order.
//!
//! # Duplicate keys in one batch
//!
//! A batch may name the same key more than once. The grouping pass is a
//! *stable* counting sort: within a shard, items keep their input order, and
//! duplicates of a key always land in the same shard. Per-duplicate results
//! therefore match a sequential loop of single-key calls exactly:
//!
//! * `multi_insert` — the **first** occurrence (in input order) inserts and
//!   reports `true`; later occurrences report `false` and do not overwrite.
//! * `multi_remove` — the first occurrence removes and reports the value;
//!   later occurrences report `None`.
//! * `multi_get` — every occurrence is answered (all see the same shard
//!   state unless a concurrent writer intervenes between the two lookups).

use ascylib::api::ConcurrentMap;

use crate::map::ShardedMap;

/// A reusable per-shard grouping of `(input position, payload)` pairs.
///
/// Grouping is a counting sort by shard index: one routing pass to count,
/// one pass to place. Both passes are O(batch); no per-shard `Vec`s are
/// allocated.
struct Grouped<T> {
    /// `(original index, payload)` sorted by shard.
    slots: Vec<(usize, T)>,
    /// `bounds[s]..bounds[s + 1]` is shard `s`'s slice of `slots`.
    bounds: Vec<usize>,
}

fn group_by_shard<M: ConcurrentMap, T: Copy>(
    map: &ShardedMap<M>,
    items: &[T],
    key_of: impl Fn(&T) -> u64,
) -> Grouped<T> {
    let shards = map.shard_count();
    let mut counts = vec![0usize; shards + 1];
    for item in items {
        counts[map.shard_of(key_of(item)) + 1] += 1;
    }
    for s in 0..shards {
        counts[s + 1] += counts[s];
    }
    let bounds = counts.clone();
    // Place each item at its shard's cursor; every slot is written exactly
    // once, so the placeholder (item 0) never survives.
    let mut slots: Vec<(usize, T)> = vec![(0, items[0]); items.len()];
    let mut cursors = counts;
    for (i, item) in items.iter().enumerate() {
        let s = map.shard_of(key_of(item));
        slots[cursors[s]] = (i, *item);
        cursors[s] += 1;
    }
    Grouped { slots, bounds }
}

impl<M: ConcurrentMap> ShardedMap<M> {
    /// The shared group → dispatch → scatter loop behind every `multi_*`
    /// operation: visit each shard once with its slice of the batch, apply
    /// `op` per item, scatter results back to input positions, and record
    /// one `(attempts, successes)` stats batch per shard.
    fn dispatch<T: Copy, R: Clone + Default>(
        &self,
        items: &[T],
        key_of: impl Fn(&T) -> u64,
        op: impl Fn(&M, T) -> R,
        succeeded: impl Fn(&R) -> bool,
        record: impl Fn(&crate::stats::ShardStats, u64, u64),
    ) -> Vec<R> {
        let mut results = Vec::new();
        self.dispatch_into(items, key_of, op, succeeded, record, &mut results);
        results
    }

    /// Buffer-reusing core of [`dispatch`](Self::dispatch): clears `results`
    /// and refills it in input order, so a caller looping over batches (the
    /// server's `MGET` hot path) pays for the result allocation once, not
    /// once per batch.
    fn dispatch_into<T: Copy, R: Clone + Default>(
        &self,
        items: &[T],
        key_of: impl Fn(&T) -> u64,
        op: impl Fn(&M, T) -> R,
        succeeded: impl Fn(&R) -> bool,
        record: impl Fn(&crate::stats::ShardStats, u64, u64),
        results: &mut Vec<R>,
    ) {
        results.clear();
        if items.is_empty() {
            return;
        }
        let grouped = group_by_shard(self, items, key_of);
        results.resize(items.len(), R::default());
        for s in 0..self.shard_count() {
            let shard = self.shard(s);
            let slice = &grouped.slots[grouped.bounds[s]..grouped.bounds[s + 1]];
            let mut ok = 0u64;
            for &(pos, item) in slice {
                let outcome = op(shard, item);
                if succeeded(&outcome) {
                    ok += 1;
                }
                results[pos] = outcome;
            }
            record(self.stats_of(s), slice.len() as u64, ok);
        }
    }

    /// Looks up every key, visiting each shard once; results are in input
    /// order (`result[i]` answers `keys[i]`), duplicates included.
    pub fn multi_get(&self, keys: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        self.multi_get_into(keys, &mut out);
        out
    }

    /// Buffer-reusing variant of [`multi_get`](Self::multi_get) (mirroring
    /// `scan_into`): clears `out` and refills it with the per-key answers in
    /// input order. A front-end answering a stream of `MGET` batches reuses
    /// one buffer instead of allocating a fresh result vector per frame.
    pub fn multi_get_into(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        if let Some(hot) = self.hot() {
            // Detection only: the batched read path answers from the
            // backing (which writes always reach first, so it is never
            // behind the front cache).
            for &k in keys {
                hot.record_access(k);
            }
        }
        self.dispatch_into(
            keys,
            |&k| k,
            |shard, k| shard.search(k),
            Option::is_some,
            |stats, n, ok| stats.record_searches(n, ok),
            out,
        );
    }

    /// Inserts every `(key, value)` pair, visiting each shard once;
    /// `result[i]` tells whether `entries[i]` was newly inserted. A duplicate
    /// key inside one batch inserts once (the first occurrence in input
    /// order within its shard wins, matching a loop of single inserts).
    pub fn multi_insert(&self, entries: &[(u64, u64)]) -> Vec<bool> {
        let results = self.dispatch(
            entries,
            |&(k, _)| k,
            |shard, (k, v)| shard.insert(k, v),
            |&ok| ok,
            |stats, n, ok| stats.record_inserts(n, ok),
        );
        if let Some(hot) = self.hot() {
            // Batched writes bypass the delegation fast path but must keep
            // the coherence contract: drop any cached copy of a key this
            // batch just wrote, after the backing writes completed.
            for &(k, _) in entries {
                hot.record_access(k);
                hot.poison(k);
            }
        }
        results
    }

    /// Removes every key, visiting each shard once; `result[i]` is the value
    /// removed for `keys[i]` (a duplicate key removes once).
    pub fn multi_remove(&self, keys: &[u64]) -> Vec<Option<u64>> {
        let results = self.dispatch(
            keys,
            |&k| k,
            |shard, k| shard.remove(k),
            Option::is_some,
            |stats, n, ok| stats.record_removes(n, ok),
        );
        if let Some(hot) = self.hot() {
            for &k in keys {
                hot.record_access(k);
                hot.poison(k);
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascylib::hashtable::ClhtLb;
    use ascylib::list::HarrisList;

    fn sharded() -> ShardedMap<ClhtLb> {
        ShardedMap::new(6, |_| ClhtLb::with_capacity(64))
    }

    #[test]
    fn multi_get_preserves_input_order() {
        let map = sharded();
        for k in (2..=100u64).step_by(2) {
            map.insert(k, k * 3);
        }
        let keys: Vec<u64> = (1..=100).rev().collect();
        let got = map.multi_get(&keys);
        assert_eq!(got.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            let expect = if k % 2 == 0 { Some(k * 3) } else { None };
            assert_eq!(got[i], expect, "key {k} at position {i}");
        }
    }

    #[test]
    fn multi_get_into_reuses_the_buffer_and_matches_the_allocating_wrapper() {
        let map = sharded();
        for k in 1..=40u64 {
            map.insert(k, k + 7);
        }
        let mut out: Vec<Option<u64>> = Vec::new();
        let keys_a: Vec<u64> = (1..=50u64).collect();
        map.multi_get_into(&keys_a, &mut out);
        assert_eq!(out, map.multi_get(&keys_a));
        let cap = out.capacity();
        // A second, smaller batch through the same buffer: cleared, refilled
        // in input order, no reallocation.
        let keys_b = [40u64, 3, 99, 3];
        map.multi_get_into(&keys_b, &mut out);
        assert_eq!(out, vec![Some(47), Some(10), None, Some(10)]);
        assert_eq!(out.capacity(), cap, "smaller batch must reuse the allocation");
        // Empty batch clears the buffer.
        map.multi_get_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn multi_insert_reports_per_entry_outcomes() {
        let map = sharded();
        map.insert(5, 50);
        let outcomes = map.multi_insert(&[(4, 40), (5, 51), (6, 60), (4, 41)]);
        assert_eq!(outcomes, vec![true, false, true, false]);
        assert_eq!(map.search(4), Some(40), "first duplicate in input order wins");
        assert_eq!(map.search(5), Some(50));
    }

    #[test]
    fn multi_remove_matches_singular_semantics() {
        let map = sharded();
        for k in 1..=20u64 {
            map.insert(k, k + 100);
        }
        let removed = map.multi_remove(&[3, 3, 21, 7]);
        assert_eq!(removed, vec![Some(103), None, None, Some(107)]);
        assert_eq!(map.size(), 18);
    }

    #[test]
    fn empty_batches_are_noops() {
        let map = sharded();
        assert!(map.multi_get(&[]).is_empty());
        assert!(map.multi_insert(&[]).is_empty());
        assert!(map.multi_remove(&[]).is_empty());
        assert_eq!(map.total_stats().operations(), 0);
    }

    #[test]
    fn duplicate_keys_in_one_insert_batch_follow_input_order() {
        // All duplicates of a key route to one shard, and grouping is a
        // stable counting sort, so the first occurrence in *input* order
        // wins — even when the duplicates are interleaved with other shards'
        // keys and the batch is dispatched shard by shard.
        let map = sharded();
        let entries: Vec<(u64, u64)> =
            vec![(9, 1), (3, 1), (9, 2), (14, 1), (9, 3), (3, 2), (27, 1), (9, 4)];
        let outcomes = map.multi_insert(&entries);
        assert_eq!(outcomes, vec![true, true, false, true, false, false, true, false]);
        assert_eq!(map.search(9), Some(1), "first occurrence's value survives");
        assert_eq!(map.search(3), Some(1));
        assert_eq!(map.size(), 4);
        // A sequential loop agrees exactly.
        let singular = sharded();
        let loop_outcomes: Vec<bool> =
            entries.iter().map(|&(k, v)| singular.insert(k, v)).collect();
        assert_eq!(outcomes, loop_outcomes);
    }

    #[test]
    fn duplicate_keys_in_one_remove_batch_remove_once() {
        let map = sharded();
        for k in [5u64, 6, 7] {
            map.insert(k, k * 10);
        }
        let removed = map.multi_remove(&[6, 5, 6, 6, 8, 5]);
        assert_eq!(removed, vec![Some(60), Some(50), None, None, None, None]);
        assert_eq!(map.size(), 1);
        assert_eq!(map.search(7), Some(70));
    }

    #[test]
    fn duplicate_keys_in_one_get_batch_are_each_answered() {
        let map = sharded();
        map.insert(11, 110);
        assert_eq!(map.multi_get(&[11, 11, 12, 11]), vec![Some(110), Some(110), None, Some(110)]);
    }

    #[test]
    fn single_shard_batches_degenerate_to_the_backing_structure() {
        // shard_count = 1: the counting sort has one bucket; everything
        // must still dispatch, scatter back in input order, and count stats.
        let map = ShardedMap::new(1, |_| ClhtLb::with_capacity(64));
        let keys: Vec<u64> = (1..=32u64).rev().collect();
        let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k + 1000)).collect();
        assert!(map.multi_insert(&entries).iter().all(|&ok| ok));
        let got = map.multi_get(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(got[i], Some(k + 1000), "input order preserved for key {k}");
        }
        let removed = map.multi_remove(&keys);
        assert!(removed.iter().all(Option::is_some));
        assert!(map.is_empty());
        assert_eq!(map.total_stats().inserts_ok, 32);
        assert_eq!(map.total_stats().removes_ok, 32);
    }

    #[test]
    fn one_batch_spanning_every_shard_visits_each_once() {
        // Enough dense keys to hit all 6 shards in a single batch; per-shard
        // stats must account for every key exactly once.
        let map = sharded();
        let entries: Vec<(u64, u64)> = (1..=60u64).map(|k| (k, k)).collect();
        map.multi_insert(&entries);
        let per_shard = map.shard_stats();
        assert_eq!(per_shard.iter().map(|s| s.inserts).sum::<u64>(), 60);
        assert!(
            per_shard.iter().all(|s| s.inserts > 0),
            "dense batch must touch every shard: {per_shard:?}"
        );
        assert_eq!(map.size(), 60);
    }

    #[test]
    fn batches_update_shard_stats() {
        let map = sharded();
        map.multi_insert(&[(1, 1), (2, 2), (3, 3)]);
        map.multi_get(&[1, 2, 3, 4]);
        let total = map.total_stats();
        assert_eq!(total.inserts, 3);
        assert_eq!(total.inserts_ok, 3);
        assert_eq!(total.searches, 4);
        assert_eq!(total.hits, 3);
    }

    #[test]
    fn batched_and_singular_agree_on_list_shards() {
        let batched = ShardedMap::new(4, |_| HarrisList::new());
        let singular = ShardedMap::new(4, |_| HarrisList::new());
        let entries: Vec<(u64, u64)> = (1..=64u64).map(|k| (k * 3 % 97 + 1, k)).collect();
        let b = batched.multi_insert(&entries);
        let s: Vec<bool> = entries.iter().map(|&(k, v)| singular.insert(k, v)).collect();
        assert_eq!(b, s);
        let keys: Vec<u64> = (1..=100u64).collect();
        assert_eq!(
            batched.multi_get(&keys),
            keys.iter().map(|&k| singular.search(k)).collect::<Vec<_>>()
        );
        assert_eq!(
            batched.multi_remove(&keys),
            keys.iter().map(|&k| singular.remove(k)).collect::<Vec<_>>()
        );
    }
}
