//! Batched operations: group keys by shard, then dispatch shard by shard.
//!
//! A serving front-end rarely asks for one key at a time; it accumulates a
//! request batch and wants all answers. Dispatching a batch key-by-key
//! ping-pongs between shards (a router computation plus a cold structure
//! per key). Grouping first means each shard is visited once with all of its
//! keys — the shard's top-level cache lines (bucket array, list head, lock
//! words) are touched while still warm, and the per-visit routing cost is
//! amortized over the group.
//!
//! Batched operations are **not** atomic across keys: each key's operation
//! linearizes individually in its shard (the same guarantee a loop of
//! single-key calls gives, minus the cache misses). Results are returned in
//! the caller's input order regardless of the dispatch order.

use ascylib::api::ConcurrentMap;

use crate::map::ShardedMap;

/// A reusable per-shard grouping of `(input position, payload)` pairs.
///
/// Grouping is a counting sort by shard index: one routing pass to count,
/// one pass to place. Both passes are O(batch); no per-shard `Vec`s are
/// allocated.
struct Grouped<T> {
    /// `(original index, payload)` sorted by shard.
    slots: Vec<(usize, T)>,
    /// `bounds[s]..bounds[s + 1]` is shard `s`'s slice of `slots`.
    bounds: Vec<usize>,
}

fn group_by_shard<M: ConcurrentMap, T: Copy>(
    map: &ShardedMap<M>,
    items: &[T],
    key_of: impl Fn(&T) -> u64,
) -> Grouped<T> {
    let shards = map.shard_count();
    let mut counts = vec![0usize; shards + 1];
    for item in items {
        counts[map.shard_of(key_of(item)) + 1] += 1;
    }
    for s in 0..shards {
        counts[s + 1] += counts[s];
    }
    let bounds = counts.clone();
    // Place each item at its shard's cursor; every slot is written exactly
    // once, so the placeholder (item 0) never survives.
    let mut slots: Vec<(usize, T)> = vec![(0, items[0]); items.len()];
    let mut cursors = counts;
    for (i, item) in items.iter().enumerate() {
        let s = map.shard_of(key_of(item));
        slots[cursors[s]] = (i, *item);
        cursors[s] += 1;
    }
    Grouped { slots, bounds }
}

impl<M: ConcurrentMap> ShardedMap<M> {
    /// The shared group → dispatch → scatter loop behind every `multi_*`
    /// operation: visit each shard once with its slice of the batch, apply
    /// `op` per item, scatter results back to input positions, and record
    /// one `(attempts, successes)` stats batch per shard.
    fn dispatch<T: Copy, R: Clone + Default>(
        &self,
        items: &[T],
        key_of: impl Fn(&T) -> u64,
        op: impl Fn(&M, T) -> R,
        succeeded: impl Fn(&R) -> bool,
        record: impl Fn(&crate::stats::ShardStats, u64, u64),
    ) -> Vec<R> {
        if items.is_empty() {
            return Vec::new();
        }
        let grouped = group_by_shard(self, items, key_of);
        let mut results = vec![R::default(); items.len()];
        for s in 0..self.shard_count() {
            let shard = self.shard(s);
            let slice = &grouped.slots[grouped.bounds[s]..grouped.bounds[s + 1]];
            let mut ok = 0u64;
            for &(pos, item) in slice {
                let outcome = op(shard, item);
                if succeeded(&outcome) {
                    ok += 1;
                }
                results[pos] = outcome;
            }
            record(self.stats_of(s), slice.len() as u64, ok);
        }
        results
    }

    /// Looks up every key, visiting each shard once; results are in input
    /// order (`result[i]` answers `keys[i]`), duplicates included.
    pub fn multi_get(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.dispatch(
            keys,
            |&k| k,
            |shard, k| shard.search(k),
            Option::is_some,
            |stats, n, ok| stats.record_searches(n, ok),
        )
    }

    /// Inserts every `(key, value)` pair, visiting each shard once;
    /// `result[i]` tells whether `entries[i]` was newly inserted. A duplicate
    /// key inside one batch inserts once (the first occurrence in input
    /// order within its shard wins, matching a loop of single inserts).
    pub fn multi_insert(&self, entries: &[(u64, u64)]) -> Vec<bool> {
        self.dispatch(
            entries,
            |&(k, _)| k,
            |shard, (k, v)| shard.insert(k, v),
            |&ok| ok,
            |stats, n, ok| stats.record_inserts(n, ok),
        )
    }

    /// Removes every key, visiting each shard once; `result[i]` is the value
    /// removed for `keys[i]` (a duplicate key removes once).
    pub fn multi_remove(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.dispatch(
            keys,
            |&k| k,
            |shard, k| shard.remove(k),
            Option::is_some,
            |stats, n, ok| stats.record_removes(n, ok),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascylib::hashtable::ClhtLb;
    use ascylib::list::HarrisList;

    fn sharded() -> ShardedMap<ClhtLb> {
        ShardedMap::new(6, |_| ClhtLb::with_capacity(64))
    }

    #[test]
    fn multi_get_preserves_input_order() {
        let map = sharded();
        for k in (2..=100u64).step_by(2) {
            map.insert(k, k * 3);
        }
        let keys: Vec<u64> = (1..=100).rev().collect();
        let got = map.multi_get(&keys);
        assert_eq!(got.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            let expect = if k % 2 == 0 { Some(k * 3) } else { None };
            assert_eq!(got[i], expect, "key {k} at position {i}");
        }
    }

    #[test]
    fn multi_insert_reports_per_entry_outcomes() {
        let map = sharded();
        map.insert(5, 50);
        let outcomes = map.multi_insert(&[(4, 40), (5, 51), (6, 60), (4, 41)]);
        assert_eq!(outcomes, vec![true, false, true, false]);
        assert_eq!(map.search(4), Some(40), "first duplicate in input order wins");
        assert_eq!(map.search(5), Some(50));
    }

    #[test]
    fn multi_remove_matches_singular_semantics() {
        let map = sharded();
        for k in 1..=20u64 {
            map.insert(k, k + 100);
        }
        let removed = map.multi_remove(&[3, 3, 21, 7]);
        assert_eq!(removed, vec![Some(103), None, None, Some(107)]);
        assert_eq!(map.size(), 18);
    }

    #[test]
    fn empty_batches_are_noops() {
        let map = sharded();
        assert!(map.multi_get(&[]).is_empty());
        assert!(map.multi_insert(&[]).is_empty());
        assert!(map.multi_remove(&[]).is_empty());
        assert_eq!(map.total_stats().operations(), 0);
    }

    #[test]
    fn batches_update_shard_stats() {
        let map = sharded();
        map.multi_insert(&[(1, 1), (2, 2), (3, 3)]);
        map.multi_get(&[1, 2, 3, 4]);
        let total = map.total_stats();
        assert_eq!(total.inserts, 3);
        assert_eq!(total.inserts_ok, 3);
        assert_eq!(total.searches, 4);
        assert_eq!(total.hits, 3);
    }

    #[test]
    fn batched_and_singular_agree_on_list_shards() {
        let batched = ShardedMap::new(4, |_| HarrisList::new());
        let singular = ShardedMap::new(4, |_| HarrisList::new());
        let entries: Vec<(u64, u64)> = (1..=64u64).map(|k| (k * 3 % 97 + 1, k)).collect();
        let b = batched.multi_insert(&entries);
        let s: Vec<bool> = entries.iter().map(|&(k, v)| singular.insert(k, v)).collect();
        assert_eq!(b, s);
        let keys: Vec<u64> = (1..=100u64).collect();
        assert_eq!(
            batched.multi_get(&keys),
            keys.iter().map(|&k| singular.search(k)).collect::<Vec<_>>()
        );
        assert_eq!(
            batched.multi_remove(&keys),
            keys.iter().map(|&k| singular.remove(k)).collect::<Vec<_>>()
        );
    }
}
