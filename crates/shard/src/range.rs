//! Scatter-gather range scans over the shards.
//!
//! Hash routing spreads a key *range* across every shard, so a range query
//! must fan out: each shard answers over its own (key-sorted) subset, and a
//! k-way merge stitches the per-shard results back into one globally
//! key-ordered sequence. Shards partition the key space, so the merged
//! streams never contain the same key twice and the merge needs no
//! deduplication.
//!
//! The consistency contract is inherited from
//! [`ascylib::ordered`](ascylib::ordered): each shard's sub-scan is a
//! non-snapshot scan, and the scatter adds no cross-shard atomicity — a pair
//! from shard 0 and a pair from shard 1 may never have coexisted. This is
//! the same trade the per-key operations already make (no cross-shard
//! coordination on the hot path).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ascylib::ordered::OrderedMap;

use crate::map::ShardedMap;

/// K-way merge of per-shard, individually key-sorted result vectors into
/// `out`. Returns the number of pairs appended. `limit` truncates the merged
/// output (for `scan`); pass `usize::MAX` for no limit.
fn merge_sorted(mut parts: Vec<Vec<(u64, u64)>>, out: &mut Vec<(u64, u64)>, limit: usize) -> usize {
    let start_len = out.len();
    // Heap of (key, part index); each part is consumed front to back via a
    // per-part cursor. Reverse turns the max-heap into a min-heap on key.
    let mut cursors = vec![0usize; parts.len()];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(parts.len());
    for (i, part) in parts.iter().enumerate() {
        if let Some(&(k, _)) = part.first() {
            heap.push(Reverse((k, i)));
        }
    }
    while let Some(Reverse((key, i))) = heap.pop() {
        if out.len() - start_len >= limit {
            break;
        }
        let cursor = cursors[i];
        let (_, value) = parts[i][cursor];
        out.push((key, value));
        cursors[i] += 1;
        if let Some(&(next_key, _)) = parts[i].get(cursors[i]) {
            heap.push(Reverse((next_key, i)));
        } else {
            parts[i].clear();
        }
    }
    out.len() - start_len
}

/// Range scans over a sharded deployment of any ordered backing: scatter to
/// every shard, gather with a k-way merge, so the serving tier exposes the
/// same [`OrderedMap`] surface as a single structure.
impl<M: OrderedMap> OrderedMap for ShardedMap<M> {
    fn range_search(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) -> usize {
        let parts: Vec<Vec<(u64, u64)>> = (0..self.shard_count())
            .map(|i| {
                let mut part = Vec::new();
                self.shard(i).range_search(lo, hi, &mut part);
                self.stats_of(i).record_scan(part.len() as u64);
                part
            })
            .collect();
        merge_sorted(parts, out, usize::MAX)
    }

    fn scan(&self, from: u64, n: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(n.min(64));
        self.scan_into(from, n, &mut out);
        out
    }

    fn scan_into(&self, from: u64, n: usize, out: &mut Vec<(u64, u64)>) -> usize {
        // Every shard may hold up to `n` of the globally-first `n` keys, so
        // each sub-scan must fetch `n`; the merge then keeps the first `n`.
        // (The per-shard gather buffers still allocate — the scatter is
        // inherently a collect step — but the caller's buffer is reused.)
        let parts: Vec<Vec<(u64, u64)>> = (0..self.shard_count())
            .map(|i| {
                let part = self.shard(i).scan(from, n);
                self.stats_of(i).record_scan(part.len() as u64);
                part
            })
            .collect();
        merge_sorted(parts, out, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_interleaves_sorted_parts_in_global_order() {
        let parts = vec![
            vec![(1, 10), (5, 50), (9, 90)],
            vec![(2, 20), (3, 30)],
            vec![],
            vec![(4, 40), (8, 80)],
        ];
        let mut out = Vec::new();
        let n = merge_sorted(parts, &mut out, usize::MAX);
        assert_eq!(n, 7);
        assert_eq!(
            out,
            vec![(1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (8, 80), (9, 90)]
        );
    }

    #[test]
    fn merge_respects_the_limit() {
        let parts = vec![vec![(1, 1), (4, 4)], vec![(2, 2), (3, 3)]];
        let mut out = Vec::new();
        assert_eq!(merge_sorted(parts, &mut out, 3), 3);
        assert_eq!(out, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let mut out = Vec::new();
        assert_eq!(merge_sorted(Vec::new(), &mut out, 5), 0);
        assert_eq!(merge_sorted(vec![vec![], vec![]], &mut out, 5), 0);
        assert!(out.is_empty());
    }
}
