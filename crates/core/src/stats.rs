//! Per-thread instrumentation of shared-memory behaviour.
//!
//! The paper's central argument is that the scalability of a CSDS is
//! determined by the coherence traffic it generates: stores (and
//! read-modify-writes) on shared cache lines invalidate remote copies and
//! turn into cache misses on other cores (§4, Figure 3). Since we do not have
//! the paper's hardware performance counters, every algorithm in this crate
//! reports its shared-memory events here, and the benchmark harness converts
//! them into a cache-line-transfer estimate and an energy model.
//!
//! The counters are plain thread-local `Cell`s: recording an event costs a
//! couple of nanoseconds and never touches shared memory, so the
//! instrumentation does not perturb the scalability behaviour being measured.

use std::cell::Cell;

/// A snapshot of the calling thread's event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Stores to shared memory (node fields, lock words, bucket words).
    pub shared_stores: u64,
    /// Atomic read-modify-write operations (CAS, FAA, SWAP) attempted.
    pub atomic_ops: u64,
    /// Atomic operations that failed (lost a race) and had to be retried or
    /// abandoned.
    pub atomic_failures: u64,
    /// Lock acquisitions (each acquisition dirties the lock's cache line).
    pub lock_acquisitions: u64,
    /// Operation restarts (failed validation, failed clean-up, helping).
    pub restarts: u64,
    /// Nodes traversed during searches and parse phases.
    pub nodes_traversed: u64,
    /// Operations that waited (blocked) for another thread at least once.
    pub waits: u64,
    /// Completed operations (search + insert + remove).
    pub operations: u64,
}

impl OpCounters {
    /// The all-zero snapshot, usable in `const` contexts (thread-local
    /// baselines) where `Default::default()` is not.
    pub const ZERO: OpCounters = OpCounters {
        shared_stores: 0,
        atomic_ops: 0,
        atomic_failures: 0,
        lock_acquisitions: 0,
        restarts: 0,
        nodes_traversed: 0,
        waits: 0,
        operations: 0,
    };

    /// Estimated cache-line transfers caused by this thread.
    ///
    /// Every store/RMW on a shared line invalidates remote copies, so the
    /// transfer count is approximated by the number of shared stores, atomic
    /// operations and lock acquisitions (lock release is a store and is
    /// already counted by the call sites that record it).
    pub fn cache_line_transfers(&self) -> u64 {
        self.shared_stores + self.atomic_ops + self.lock_acquisitions
    }

    /// Estimated cache-line transfers per completed operation.
    pub fn transfers_per_operation(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.cache_line_transfers() as f64 / self.operations as f64
        }
    }

    /// Atomic operations per completed operation (the §ASCY4 metric the
    /// paper reports for BSTs: natarajan ≈ 2 per update, others > 3).
    pub fn atomics_per_operation(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.atomic_ops as f64 / self.operations as f64
        }
    }

    /// Memory accesses (loads approximated by traversed nodes, plus stores).
    pub fn memory_accesses(&self) -> u64 {
        self.nodes_traversed + self.shared_stores + self.atomic_ops
    }

    /// Adds another snapshot to this one (used to aggregate across threads).
    ///
    /// Uses saturating addition: the fields are monotonic event counts, and a
    /// wrapped sum would silently report a tiny value after a very long run
    /// (at 10⁹ events/s a `u64` wraps after ~585 years per thread, but the
    /// *sum* across many threads gets there proportionally sooner). Clamping
    /// at `u64::MAX` keeps the aggregate obviously-saturated instead of
    /// quietly wrong, and avoids the debug-build overflow panic.
    pub fn merge(&mut self, other: &OpCounters) {
        self.shared_stores = self.shared_stores.saturating_add(other.shared_stores);
        self.atomic_ops = self.atomic_ops.saturating_add(other.atomic_ops);
        self.atomic_failures = self.atomic_failures.saturating_add(other.atomic_failures);
        self.lock_acquisitions = self.lock_acquisitions.saturating_add(other.lock_acquisitions);
        self.restarts = self.restarts.saturating_add(other.restarts);
        self.nodes_traversed = self.nodes_traversed.saturating_add(other.nodes_traversed);
        self.waits = self.waits.saturating_add(other.waits);
        self.operations = self.operations.saturating_add(other.operations);
    }

    /// Field-wise saturating subtraction: the events in `self` that are
    /// not already in `earlier`. Both snapshots must come from the same
    /// thread's cumulative counters for the result to be meaningful;
    /// saturation (rather than wrap) keeps a mid-air [`reset`] from
    /// producing astronomically large deltas.
    pub fn saturating_sub(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            shared_stores: self.shared_stores.saturating_sub(earlier.shared_stores),
            atomic_ops: self.atomic_ops.saturating_sub(earlier.atomic_ops),
            atomic_failures: self.atomic_failures.saturating_sub(earlier.atomic_failures),
            lock_acquisitions: self.lock_acquisitions.saturating_sub(earlier.lock_acquisitions),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            nodes_traversed: self.nodes_traversed.saturating_sub(earlier.nodes_traversed),
            waits: self.waits.saturating_sub(earlier.waits),
            operations: self.operations.saturating_sub(earlier.operations),
        }
    }
}

thread_local! {
    static SHARED_STORES: Cell<u64> = const { Cell::new(0) };
    static ATOMIC_OPS: Cell<u64> = const { Cell::new(0) };
    static ATOMIC_FAILURES: Cell<u64> = const { Cell::new(0) };
    static LOCK_ACQUISITIONS: Cell<u64> = const { Cell::new(0) };
    static RESTARTS: Cell<u64> = const { Cell::new(0) };
    static NODES_TRAVERSED: Cell<u64> = const { Cell::new(0) };
    static WAITS: Cell<u64> = const { Cell::new(0) };
    static OPERATIONS: Cell<u64> = const { Cell::new(0) };
    /// Baseline for [`drain_delta`]: everything already handed out by a
    /// previous drain on this thread.
    static DRAINED: Cell<OpCounters> = const { Cell::new(OpCounters::ZERO) };
}

/// Cross-thread safety: each counter is a thread-local `Cell` with exactly
/// one writer (the owning thread), so there are no lost updates by
/// construction; aggregation happens via [`snapshot`] after the harness joins
/// the worker (the join provides the happens-before edge). Saturating add so
/// a pathologically long run clamps at `u64::MAX` instead of panicking in
/// debug builds or wrapping to a misleadingly small count in release.
#[inline]
fn bump(cell: &'static std::thread::LocalKey<Cell<u64>>, n: u64) {
    cell.with(|c| c.set(c.get().saturating_add(n)));
}

/// Records a store to shared memory.
#[inline]
pub fn record_store() {
    bump(&SHARED_STORES, 1);
}

/// Records `n` stores to shared memory (e.g. a copy-on-write array copy).
#[inline]
pub fn record_stores(n: u64) {
    bump(&SHARED_STORES, n);
}

/// Records an atomic read-modify-write; `success` is `false` when it lost a
/// race.
#[inline]
pub fn record_atomic(success: bool) {
    bump(&ATOMIC_OPS, 1);
    if !success {
        bump(&ATOMIC_FAILURES, 1);
    }
}

/// Records a lock acquisition.
#[inline]
pub fn record_lock() {
    bump(&LOCK_ACQUISITIONS, 1);
}

/// Records an operation restart (failed validation / clean-up / helping).
#[inline]
pub fn record_restart() {
    bump(&RESTARTS, 1);
}

/// Records `n` nodes traversed during a search or parse phase.
#[inline]
pub fn record_traversal(n: u64) {
    bump(&NODES_TRAVERSED, n);
}

/// Records that the operation had to wait for another thread.
#[inline]
pub fn record_wait() {
    bump(&WAITS, 1);
}

/// Records a completed data-structure operation.
#[inline]
pub fn record_operation() {
    bump(&OPERATIONS, 1);
}

/// Returns the calling thread's counters.
pub fn snapshot() -> OpCounters {
    OpCounters {
        shared_stores: SHARED_STORES.with(Cell::get),
        atomic_ops: ATOMIC_OPS.with(Cell::get),
        atomic_failures: ATOMIC_FAILURES.with(Cell::get),
        lock_acquisitions: LOCK_ACQUISITIONS.with(Cell::get),
        restarts: RESTARTS.with(Cell::get),
        nodes_traversed: NODES_TRAVERSED.with(Cell::get),
        waits: WAITS.with(Cell::get),
        operations: OPERATIONS.with(Cell::get),
    }
}

/// Returns the calling thread's counters accumulated since the previous
/// `drain_delta` call (or since thread start for the first call) and
/// advances the drain baseline, **without** touching the counters
/// themselves. This is the serving-tier primitive: a worker drains after
/// every connection pass and folds the delta into a shared per-worker
/// block, while `snapshot()`/`reset()` users (the bench harness) keep
/// their absolute view — the two protocols compose because draining never
/// writes the underlying cells.
pub fn drain_delta() -> OpCounters {
    let now = snapshot();
    DRAINED.with(|c| {
        let before = c.get();
        c.set(now);
        now.saturating_sub(&before)
    })
}

/// Resets the calling thread's counters to zero.
///
/// Also rewinds the [`drain_delta`] baseline, so a drain after a reset
/// sees only events recorded since the reset (instead of saturating
/// against a stale baseline and reporting zero until it catches up).
pub fn reset() {
    DRAINED.with(|c| c.set(OpCounters::ZERO));
    SHARED_STORES.with(|c| c.set(0));
    ATOMIC_OPS.with(|c| c.set(0));
    ATOMIC_FAILURES.with(|c| c.set(0));
    LOCK_ACQUISITIONS.with(|c| c.set(0));
    RESTARTS.with(|c| c.set(0));
    NODES_TRAVERSED.with(|c| c.set(0));
    WAITS.with(|c| c.set(0));
    OPERATIONS.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_store();
        record_stores(2);
        record_atomic(true);
        record_atomic(false);
        record_lock();
        record_restart();
        record_traversal(10);
        record_wait();
        record_operation();
        let s = snapshot();
        assert_eq!(s.shared_stores, 3);
        assert_eq!(s.atomic_ops, 2);
        assert_eq!(s.atomic_failures, 1);
        assert_eq!(s.lock_acquisitions, 1);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.nodes_traversed, 10);
        assert_eq!(s.waits, 1);
        assert_eq!(s.operations, 1);
        assert_eq!(s.cache_line_transfers(), 6);
        assert!(s.transfers_per_operation() > 0.0);
        reset();
        assert_eq!(snapshot(), OpCounters::default());
    }

    #[test]
    fn drain_delta_hands_out_each_event_exactly_once() {
        reset();
        record_stores(5);
        record_operation();
        let d1 = drain_delta();
        assert_eq!(d1.shared_stores, 5);
        assert_eq!(d1.operations, 1);
        // Nothing new since the drain: empty delta, absolute view intact.
        assert_eq!(drain_delta(), OpCounters::ZERO);
        assert_eq!(snapshot().shared_stores, 5);
        record_stores(2);
        assert_eq!(drain_delta().shared_stores, 2);
        // A reset rewinds the baseline as well as the counters.
        reset();
        record_store();
        assert_eq!(drain_delta().shared_stores, 1);
        reset();
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = OpCounters { shared_stores: 1, operations: 2, ..Default::default() };
        let b = OpCounters { shared_stores: 3, operations: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.shared_stores, 4);
        assert_eq!(a.operations, 6);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = OpCounters { operations: u64::MAX - 1, ..Default::default() };
        let b = OpCounters { operations: 10, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.operations, u64::MAX);
    }

    #[test]
    fn per_operation_ratios_handle_zero_ops() {
        let c = OpCounters::default();
        assert_eq!(c.transfers_per_operation(), 0.0);
        assert_eq!(c.atomics_per_operation(), 0.0);
    }
}
