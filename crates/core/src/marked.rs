//! Marked atomic pointers.
//!
//! Lock-free algorithms in ASCYLIB steal the low bits of node pointers to
//! store logical-deletion marks (Harris lists, Fraser skip lists) or
//! flag/tag pairs (the Natarajan–Mittal BST). Node types are allocated with
//! an alignment of at least 4 bytes, so the two least-significant bits of a
//! node address are always zero and can carry metadata.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Mask covering the tag bits (two least-significant bits).
const TAG_MASK: usize = 0b11;

/// An atomic pointer whose two low bits carry a small tag.
///
/// Bit 0 is conventionally the *mark* (logical deletion) bit; bit 1 is used
/// as the *flag* bit by the Natarajan–Mittal tree.
///
/// # Example
///
/// ```
/// use ascylib::marked::MarkedPtr;
///
/// let ptr: MarkedPtr<u64> = MarkedPtr::null();
/// assert!(ptr.load_ptr().is_null());
/// assert_eq!(ptr.load_tag(), 0);
/// ```
#[derive(Debug)]
pub struct MarkedPtr<T> {
    raw: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `MarkedPtr` is just an atomic word; sharing it is as safe as
// sharing an `AtomicPtr`. The pointed-to data's thread safety is the
// responsibility of the data-structure code that dereferences it.
unsafe impl<T> Send for MarkedPtr<T> {}
// SAFETY: see above.
unsafe impl<T> Sync for MarkedPtr<T> {}

/// Packs a pointer and a tag into one word.
#[inline]
fn pack<T>(ptr: *mut T, tag: usize) -> usize {
    debug_assert_eq!(ptr as usize & TAG_MASK, 0, "pointer must be 4-byte aligned");
    debug_assert!(tag <= TAG_MASK, "tag must fit in two bits");
    (ptr as usize) | tag
}

/// Splits a packed word into pointer and tag.
#[inline]
fn unpack<T>(raw: usize) -> (*mut T, usize) {
    ((raw & !TAG_MASK) as *mut T, raw & TAG_MASK)
}

impl<T> MarkedPtr<T> {
    /// Creates a null pointer with tag 0.
    #[inline]
    pub const fn null() -> Self {
        Self { raw: AtomicUsize::new(0), _marker: PhantomData }
    }

    /// Creates a marked pointer from a raw pointer and tag.
    #[inline]
    pub fn new(ptr: *mut T, tag: usize) -> Self {
        Self { raw: AtomicUsize::new(pack(ptr, tag)), _marker: PhantomData }
    }

    /// Atomically loads the pointer and tag.
    #[inline]
    pub fn load(&self, order: Ordering) -> (*mut T, usize) {
        unpack(self.raw.load(order))
    }

    /// Loads only the pointer component (with `Acquire` ordering).
    #[inline]
    pub fn load_ptr(&self) -> *mut T {
        self.load(Ordering::Acquire).0
    }

    /// Loads only the tag component (with `Acquire` ordering).
    #[inline]
    pub fn load_tag(&self) -> usize {
        self.load(Ordering::Acquire).1
    }

    /// Atomically stores a pointer/tag pair.
    #[inline]
    pub fn store(&self, ptr: *mut T, tag: usize, order: Ordering) {
        self.raw.store(pack(ptr, tag), order);
    }

    /// Compare-and-swap on the full (pointer, tag) word.
    ///
    /// Returns `Ok(())` on success and the observed (pointer, tag) on
    /// failure.
    #[inline]
    pub fn compare_exchange(
        &self,
        current_ptr: *mut T,
        current_tag: usize,
        new_ptr: *mut T,
        new_tag: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<(), (*mut T, usize)> {
        self.raw
            .compare_exchange(
                pack(current_ptr, current_tag),
                pack(new_ptr, new_tag),
                success,
                failure,
            )
            .map(|_| ())
            .map_err(unpack)
    }
}

impl<T> Default for MarkedPtr<T> {
    fn default() -> Self {
        Self::null()
    }
}

/// Conventional tag values used by the lock-free algorithms.
pub mod tag {
    /// No mark: the edge/node is live.
    pub const CLEAN: usize = 0b00;
    /// The node (Harris/Fraser) or edge (Natarajan) is logically deleted.
    pub const MARK: usize = 0b01;
    /// The edge is flagged for deletion (Natarajan–Mittal).
    pub const FLAG: usize = 0b10;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let b = Box::into_raw(Box::new(7u64));
        let p = MarkedPtr::new(b, tag::MARK);
        let (ptr, t) = p.load(Ordering::Acquire);
        assert_eq!(ptr, b);
        assert_eq!(t, tag::MARK);
        // SAFETY: we own the allocation.
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn cas_succeeds_only_on_exact_match() {
        let a = Box::into_raw(Box::new(1u64));
        let b = Box::into_raw(Box::new(2u64));
        let p = MarkedPtr::new(a, tag::CLEAN);
        // Wrong tag: must fail.
        assert!(p
            .compare_exchange(a, tag::MARK, b, tag::CLEAN, Ordering::AcqRel, Ordering::Acquire)
            .is_err());
        // Exact match: succeeds.
        assert!(p
            .compare_exchange(a, tag::CLEAN, b, tag::MARK, Ordering::AcqRel, Ordering::Acquire)
            .is_ok());
        let (ptr, t) = p.load(Ordering::Acquire);
        assert_eq!(ptr, b);
        assert_eq!(t, tag::MARK);
        // SAFETY: we own both allocations.
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn null_default() {
        let p: MarkedPtr<u64> = MarkedPtr::default();
        assert!(p.load_ptr().is_null());
        assert_eq!(p.load_tag(), tag::CLEAN);
    }
}
