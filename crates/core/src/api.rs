//! The common search-data-structure interface (Figure 1 of the paper).
//!
//! A search data structure is a set of `(key, value)` elements with three
//! operations: `search`, `insert` and `remove`. Updates have two phases: a
//! *parse* phase that locates the update point, and a *modification* phase
//! that applies the change.
//!
//! This module is the root of the trait hierarchy: [`ConcurrentMap`] is the
//! paper's point-operation interface, and the key-sorted structures extend
//! it with range scans via [`crate::ordered::OrderedMap`].

/// Smallest key usable by callers. Key `0` is reserved for head/empty-slot
/// sentinels inside the implementations.
pub const KEY_MIN: u64 = 1;

/// Largest key usable by callers. `u64::MAX` is reserved for tail sentinels.
pub const KEY_MAX: u64 = u64::MAX - 1;

/// The common interface of every concurrent search data structure in
/// ASCYLIB-RS (a set of `u64 → u64` elements, as in the original ASCYLIB,
/// which uses 64-bit keys and values).
///
/// # Key range
///
/// Keys must lie in `[KEY_MIN, KEY_MAX]`; the boundary values `0` and
/// `u64::MAX` are reserved for internal sentinels. Implementations
/// `debug_assert!` this.
///
/// # Consistency
///
/// All implementations except those in [`crate::asynchronized`] are
/// linearizable. The asynchronized variants deliberately omit
/// synchronization (the paper uses them as performance upper bounds) and are
/// only sequentially correct.
pub trait ConcurrentMap: Send + Sync {
    /// Looks for an element with the given key and returns its value.
    fn search(&self, key: u64) -> Option<u64>;

    /// Attempts to insert a new element; succeeds iff no element with the
    /// same key is present. Returns `true` on success.
    fn insert(&self, key: u64, value: u64) -> bool;

    /// Attempts to remove the element with the given key; returns its value
    /// if such an element existed.
    fn remove(&self, key: u64) -> Option<u64>;

    /// Number of elements currently in the structure.
    ///
    /// Not linearizable (it may traverse the structure without
    /// synchronization); intended for tests, sanity checks and reporting.
    fn size(&self) -> usize;

    /// Returns `true` if the structure holds no elements (see [`Self::size`]
    /// for the consistency caveat).
    fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// `true` if the given key is present (convenience wrapper over
    /// [`Self::search`]).
    fn contains(&self, key: u64) -> bool {
        self.search(key).is_some()
    }
}

/// Shared handles delegate to the underlying structure, so an
/// `Arc<dyn ConcurrentMap>` (e.g. from [`crate::registry`]) is itself a
/// `ConcurrentMap` and can back composite layers such as sharded maps.
impl<M: ConcurrentMap + ?Sized> ConcurrentMap for std::sync::Arc<M> {
    fn search(&self, key: u64) -> Option<u64> {
        (**self).search(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        (**self).insert(key, value)
    }

    fn remove(&self, key: u64) -> Option<u64> {
        (**self).remove(key)
    }

    fn size(&self) -> usize {
        (**self).size()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn contains(&self, key: u64) -> bool {
        (**self).contains(key)
    }
}

/// Checks that a caller-supplied key is within the usable range.
#[inline]
pub(crate) fn debug_check_key(key: u64) {
    debug_assert!(
        (KEY_MIN..=KEY_MAX).contains(&key),
        "keys must be in [{KEY_MIN}, {KEY_MAX}], got {key}"
    );
}

/// Which synchronization family an algorithm belongs to (Table 1 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// Sequential implementation, used as an (incorrect) asynchronized
    /// concurrent baseline.
    Sequential,
    /// Fully lock-based: all three operations acquire locks.
    FullyLockBased,
    /// Hybrid lock-based: only the modification phase of updates locks.
    LockBased,
    /// Lock-free: no locks, atomic operations only.
    LockFree,
}

impl std::fmt::Display for SyncKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SyncKind::Sequential => "seq",
            SyncKind::FullyLockBased => "flb",
            SyncKind::LockBased => "lb",
            SyncKind::LockFree => "lf",
        };
        f.write_str(s)
    }
}

/// Which abstract data structure an algorithm implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// Sorted singly-linked list.
    LinkedList,
    /// Hash table.
    HashTable,
    /// Skip list.
    SkipList,
    /// Binary search tree.
    Bst,
}

impl std::fmt::Display for StructureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StructureKind::LinkedList => "linked list",
            StructureKind::HashTable => "hash table",
            StructureKind::SkipList => "skip list",
            StructureKind::Bst => "bst",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_range_excludes_sentinels() {
        assert_eq!(KEY_MIN, 1);
        assert_eq!(KEY_MAX, u64::MAX - 1);
    }

    #[test]
    fn arc_handles_delegate_to_the_inner_structure() {
        use crate::list::LazyList;
        use std::sync::Arc;

        let inner = Arc::new(LazyList::new());
        let handle: Arc<dyn ConcurrentMap> = inner.clone();
        assert!(handle.insert(3, 30));
        // The blanket impl makes the Arc itself usable as a map...
        assert_eq!(ConcurrentMap::search(&handle, 3), Some(30));
        assert!(ConcurrentMap::contains(&handle, 3));
        assert_eq!(ConcurrentMap::size(&handle), 1);
        assert!(!ConcurrentMap::is_empty(&handle));
        // ...and mutations are visible through the original handle.
        assert_eq!(inner.search(3), Some(30));
        assert_eq!(ConcurrentMap::remove(&handle, 3), Some(30));
        assert!(inner.is_empty());
    }

    #[test]
    fn kinds_display() {
        assert_eq!(SyncKind::LockFree.to_string(), "lf");
        assert_eq!(SyncKind::LockBased.to_string(), "lb");
        assert_eq!(SyncKind::FullyLockBased.to_string(), "flb");
        assert_eq!(SyncKind::Sequential.to_string(), "seq");
        assert_eq!(StructureKind::SkipList.to_string(), "skip list");
    }
}
