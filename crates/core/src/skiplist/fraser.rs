//! Fraser's lock-free skip list, and its ASCY re-engineered variant.
//!
//! Nodes carry a tower of marked pointers; removal marks every level of the
//! victim's tower (logical deletion) and the physical unlinking is done by
//! the `find` helper, level by level, with CAS. In the original algorithm
//! (here [`FraserSkipList`]) the *search operation itself* uses that helper:
//! it unlinks marked nodes and restarts whenever a clean-up CAS fails or a
//! marked node is met when switching levels — violating ASCY1/2.
//!
//! [`FraserOptSkipList`] is the paper's `fraser-opt` (§5, Figure 5): ASCY1
//! and ASCY2 applied (based on the wait-free-contains technique of Herlihy,
//! Lev and Shavit). Searches traverse without a single store or restart;
//! update parses defer clean-up to the modification phase.
//!
//! Memory reclamation: a removed tower is retired only after the remover's
//! clean-up pass has unlinked it from every level. Concurrent inserters
//! validate that the successor they are about to link to is not marked and
//! repair the link if it became marked, which keeps retired towers
//! unreachable (see DESIGN.md for the discussion of this protocol).

use std::sync::atomic::{AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::marked::{tag, MarkedPtr};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::skiplist::{random_level, MAX_LEVEL};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    toplevel: usize,
    next: [MarkedPtr<Node>; MAX_LEVEL],
}

fn empty_tower() -> [MarkedPtr<Node>; MAX_LEVEL] {
    std::array::from_fn(|_| MarkedPtr::null())
}

fn new_node(key: u64, value: u64, toplevel: usize) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        toplevel,
        next: empty_tower(),
    })
}

/// Shared implementation; `OPT` selects the ASCY-compliant search/parse.
struct Fraser<const OPT: bool> {
    head: *mut Node,
    tail: *mut Node,
}

// SAFETY: shared node state is atomic; towers are retired only after the
// remover's clean-up pass unlinked them everywhere, and all traversals run
// under SSMEM guards.
unsafe impl<const OPT: bool> Send for Fraser<OPT> {}
// SAFETY: see above.
unsafe impl<const OPT: bool> Sync for Fraser<OPT> {}

impl<const OPT: bool> Fraser<OPT> {
    fn new() -> Self {
        let tail = new_node(u64::MAX, 0, MAX_LEVEL);
        let head = new_node(0, 0, MAX_LEVEL);
        // SAFETY: freshly allocated sentinels.
        // Relaxed: the list is private until the constructor returns; handing
        // `Self` to another thread synchronizes.
        unsafe {
            for level in 0..MAX_LEVEL {
                (*head).next[level].store(tail, tag::CLEAN, Ordering::Relaxed);
            }
        }
        Self { head, tail }
    }

    /// Fraser's `search` helper: records predecessors/successors at every
    /// level, physically unlinking marked nodes along the way and restarting
    /// if a clean-up CAS fails. Returns `true` if an unmarked node with the
    /// key sits at level 0.
    ///
    /// Caller must hold an SSMEM guard.
    fn find(
        &self,
        key: u64,
        preds: &mut [*mut Node; MAX_LEVEL],
        succs: &mut [*mut Node; MAX_LEVEL],
    ) -> bool {
        // SAFETY: guard protects every traversed node.
        unsafe {
            'retry: loop {
                let mut traversed = 0u64;
                let mut pred = self.head;
                for level in (0..MAX_LEVEL).rev() {
                    let mut curr = (*pred).next[level].load(Ordering::Acquire).0;
                    loop {
                        let (mut succ, mut marked) = (*curr).next[level].load(Ordering::Acquire);
                        while marked != tag::CLEAN {
                            // curr is logically deleted: unlink it here.
                            let ok = (*pred)
                                .next[level]
                                .compare_exchange(
                                    curr,
                                    tag::CLEAN,
                                    succ,
                                    tag::CLEAN,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok();
                            stats::record_atomic(ok);
                            if !ok {
                                stats::record_restart();
                                continue 'retry;
                            }
                            curr = (*pred).next[level].load(Ordering::Acquire).0;
                            let (s, m) = (*curr).next[level].load(Ordering::Acquire);
                            succ = s;
                            marked = m;
                        }
                        if (*curr).key < key {
                            pred = curr;
                            curr = succ;
                            traversed += 1;
                        } else {
                            break;
                        }
                    }
                    preds[level] = pred;
                    succs[level] = curr;
                }
                stats::record_traversal(traversed);
                return (*succs[0]).key == key;
            }
        }
    }

    /// ASCY1-compliant wait-free traversal (used by `fraser-opt` searches and
    /// by both variants' `size`). No stores, no retries.
    ///
    /// Caller must hold an SSMEM guard.
    fn traverse(&self, key: u64) -> Option<u64> {
        let mut traversed = 0u64;
        // SAFETY: guard protects every traversed node.
        unsafe {
            let mut pred = self.head;
            let mut result = None;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = (*pred).next[level].load(Ordering::Acquire).0;
                while (*curr).key < key {
                    pred = curr;
                    curr = (*curr).next[level].load(Ordering::Acquire).0;
                    traversed += 1;
                }
                if (*curr).key == key {
                    result = if (*curr).next[0].load(Ordering::Acquire).1 == tag::CLEAN {
                        Some((*curr).value.load(Ordering::Acquire))
                    } else {
                        None
                    };
                    break;
                }
            }
            stats::record_traversal(traversed);
            result
        }
    }

    fn search_op(&self, key: u64) -> Option<u64> {
        let _guard = ssmem::protect();
        stats::record_operation();
        if OPT {
            // ASCY1: never helps, never restarts.
            self.traverse(key)
        } else {
            // Original fraser: the search uses the cleaning helper.
            let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
            let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
            if self.find(key, &mut preds, &mut succs) {
                // SAFETY: guard protects succs[0].
                unsafe { Some((*succs[0]).value.load(Ordering::Acquire)) }
            } else {
                None
            }
        }
    }

    fn insert_op(&self, key: u64, value: u64) -> bool {
        let _guard = ssmem::protect();
        let toplevel = random_level();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        // SAFETY: guard protects every node in preds/succs; the new node is
        // initialized before each publishing CAS.
        unsafe {
            loop {
                if OPT {
                    // ASCY3: a read-only parse decides unsuccessful inserts.
                    if self.traverse(key).is_some() {
                        stats::record_operation();
                        return false;
                    }
                }
                if self.find(key, &mut preds, &mut succs) {
                    stats::record_operation();
                    return false;
                }
                let node = new_node(key, value, toplevel);
                // Relaxed: the node is private until the level-0 CAS below
                // (AcqRel) publishes it.
                for level in 0..toplevel {
                    (*node).next[level].store(succs[level], tag::CLEAN, Ordering::Relaxed);
                }
                // Publish at level 0.
                let ok = (*preds[0])
                    .next[0]
                    .compare_exchange(
                        succs[0],
                        tag::CLEAN,
                        node,
                        tag::CLEAN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(ok);
                if !ok {
                    ssmem::dealloc_immediate(node);
                    stats::record_restart();
                    continue;
                }
                // Link the upper levels.
                for level in 1..toplevel {
                    loop {
                        // Stop if our node got logically deleted meanwhile.
                        if (*node).next[0].load(Ordering::Acquire).1 != tag::CLEAN {
                            stats::record_operation();
                            return true;
                        }
                        let succ = (*node).next[level].load(Ordering::Acquire).0;
                        // Do not link to a marked successor (it is about to be
                        // unlinked and retired).
                        if succ != self.tail
                            && (*succ).next[level].load(Ordering::Acquire).1 != tag::CLEAN
                        {
                            self.refresh_level(key, level, node, &mut preds, &mut succs);
                            continue;
                        }
                        let ok = (*preds[level])
                            .next[level]
                            .compare_exchange(
                                succ,
                                tag::CLEAN,
                                node,
                                tag::CLEAN,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok();
                        stats::record_atomic(ok);
                        if ok {
                            break;
                        }
                        stats::record_restart();
                        self.refresh_level(key, level, node, &mut preds, &mut succs);
                    }
                }
                stats::record_operation();
                return true;
            }
        }
    }

    /// Re-computes `preds`/`succs` (via `find`) and repoints the node's
    /// forward pointer at `level` to the new successor.
    ///
    /// # Safety
    ///
    /// Caller must hold a guard; `node` must be the caller's own,
    /// already-published node.
    unsafe fn refresh_level(
        &self,
        key: u64,
        level: usize,
        node: *mut Node,
        preds: &mut [*mut Node; MAX_LEVEL],
        succs: &mut [*mut Node; MAX_LEVEL],
    ) {
        let _ = self.find(key, preds, succs);
        // `find` may return our own node as the successor (it has our key);
        // in that case link to whatever follows it.
        let mut succ = succs[level];
        if succ == node {
            // SAFETY: node is our own live node.
            succ = unsafe { (*node).next[level].load(Ordering::Acquire).0 };
        }
        // SAFETY: node is our own; only removers mark its pointers, in which
        // case we stop at the next loop iteration.
        unsafe {
            let (old, m) = (*node).next[level].load(Ordering::Acquire);
            if m == tag::CLEAN && old != succ {
                let ok = (*node)
                    .next[level]
                    .compare_exchange(old, tag::CLEAN, succ, tag::CLEAN, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                stats::record_atomic(ok);
            }
        }
        succs[level] = succ;
    }

    fn remove_op(&self, key: u64) -> Option<u64> {
        let _guard = ssmem::protect();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        // SAFETY: guard protects all traversed nodes; the victim is retired
        // only after the clean-up pass has unlinked it from every level.
        unsafe {
            if OPT {
                // ASCY3: read-only parse for unsuccessful removals.
                if self.traverse(key).is_none() {
                    stats::record_operation();
                    return None;
                }
            }
            if !self.find(key, &mut preds, &mut succs) {
                stats::record_operation();
                return None;
            }
            let victim = succs[0];
            let toplevel = (*victim).toplevel;
            // Mark the upper levels (top-down).
            for level in (1..toplevel).rev() {
                loop {
                    let (succ, m) = (*victim).next[level].load(Ordering::Acquire);
                    if m != tag::CLEAN {
                        break;
                    }
                    let ok = (*victim)
                        .next[level]
                        .compare_exchange(succ, tag::CLEAN, succ, tag::MARK, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                    stats::record_atomic(ok);
                    if ok {
                        break;
                    }
                }
            }
            // Mark level 0: whoever succeeds owns the removal.
            loop {
                let (succ, m) = (*victim).next[0].load(Ordering::Acquire);
                if m != tag::CLEAN {
                    // Someone else removed it first.
                    stats::record_operation();
                    return None;
                }
                let ok = (*victim)
                    .next[0]
                    .compare_exchange(succ, tag::CLEAN, succ, tag::MARK, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                stats::record_atomic(ok);
                if ok {
                    break;
                }
                stats::record_restart();
            }
            let value = (*victim).value.load(Ordering::Acquire);
            // Physically unlink it everywhere, then retire it.
            let _ = self.find(key, &mut preds, &mut succs);
            ssmem::retire(victim);
            stats::record_operation();
            Some(value)
        }
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        // SAFETY: guard protects the traversal.
        unsafe {
            let mut curr = (*self.head).next[0].load(Ordering::Acquire).0;
            while curr != self.tail {
                let (next, m) = (*curr).next[0].load(Ordering::Acquire);
                if m == tag::CLEAN {
                    count += 1;
                }
                curr = next;
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn chain_live(&self) -> bool {
        // A marked level-0 pointer is the logical deletion point.
        self.next[0].load(Ordering::Acquire).1 == tag::CLEAN
    }

    fn chain_next(&self) -> *mut Self {
        self.next[0].load(Ordering::Acquire).0
    }
}

impl<const OPT: bool> RangeWalk for Fraser<OPT> {
    /// ASCY1-style range traversal: the upper levels position the walk at
    /// the last node with key `< lo` in O(log n), then the level-0 lane is
    /// walked like a linked list (no stores, no retries, for both
    /// variants — range reads never help with clean-up).
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every traversed node.
        unsafe {
            let mut pred = self.head;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = (*pred).next[level].load(Ordering::Acquire).0;
                while (*curr).key < lo {
                    pred = curr;
                    curr = (*curr).next[level].load(Ordering::Acquire).0;
                }
            }
            walk_chain(pred, lo, visit);
        }
    }
}

impl_ordered_map!(FraserSkipList, via inner);
impl_ordered_map!(FraserOptSkipList, via inner);

impl<const OPT: bool> Drop for Fraser<OPT> {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; free the level-0 chain.
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = if curr == self.tail {
                    std::ptr::null_mut()
                } else {
                    (*curr).next[0].load(Ordering::Relaxed).0
                };
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

/// Fraser's lock-free skip list (original, non-ASCY search).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::skiplist::FraserSkipList;
///
/// let sl = FraserSkipList::new();
/// assert!(sl.insert(5, 50));
/// assert_eq!(sl.remove(5), Some(50));
/// ```
pub struct FraserSkipList {
    inner: Fraser<false>,
}

impl FraserSkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self { inner: Fraser::new() }
    }
}

impl ConcurrentMap for FraserSkipList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        self.inner.search_op(key)
    }
    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        self.inner.insert_op(key, value)
    }
    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        self.inner.remove_op(key)
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
}

impl Default for FraserSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FraserSkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FraserSkipList").field("size", &self.size()).finish()
    }
}

/// The ASCY-compliant `fraser-opt` skip list (Figure 5 of the paper).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::skiplist::FraserOptSkipList;
///
/// let sl = FraserOptSkipList::new();
/// assert!(sl.insert(6, 60));
/// assert_eq!(sl.search(6), Some(60));
/// ```
pub struct FraserOptSkipList {
    inner: Fraser<true>,
}

impl FraserOptSkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self { inner: Fraser::new() }
    }
}

impl ConcurrentMap for FraserOptSkipList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        self.inner.search_op(key)
    }
    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        self.inner.insert_op(key, value)
    }
    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        self.inner.remove_op(key)
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
}

impl Default for FraserOptSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FraserOptSkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FraserOptSkipList").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraser_basic_semantics() {
        let sl = FraserSkipList::new();
        for k in [10u64, 30, 20, 40] {
            assert!(sl.insert(k, k));
        }
        assert!(!sl.insert(20, 0));
        assert_eq!(sl.size(), 4);
        assert_eq!(sl.search(30), Some(30));
        assert_eq!(sl.remove(30), Some(30));
        assert_eq!(sl.remove(30), None);
        assert_eq!(sl.search(30), None);
        assert_eq!(sl.size(), 3);
    }

    #[test]
    fn fraser_opt_basic_semantics() {
        let sl = FraserOptSkipList::new();
        for k in 1..=200u64 {
            assert!(sl.insert(k, k * 5));
        }
        assert_eq!(sl.size(), 200);
        for k in (1..=200u64).step_by(4) {
            assert_eq!(sl.remove(k), Some(k * 5));
        }
        for k in 1..=200u64 {
            let expected = if (k - 1) % 4 == 0 { None } else { Some(k * 5) };
            assert_eq!(sl.search(k), expected, "key {k}");
        }
    }

    #[test]
    fn fraser_reinsert_cycles() {
        let sl = FraserSkipList::new();
        for round in 0..10u64 {
            for k in 1..=40u64 {
                assert!(sl.insert(k, k + round), "round {round} insert {k}");
            }
            for k in 1..=40u64 {
                assert_eq!(sl.remove(k), Some(k + round), "round {round} remove {k}");
            }
            assert_eq!(sl.size(), 0, "round {round}");
        }
    }
}
