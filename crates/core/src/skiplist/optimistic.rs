//! Lock-based skip lists: Herlihy et al.'s optimistic skip list and Pugh's
//! skip list.
//!
//! Both algorithms parse the multi-level list without any store (ASCY1/2)
//! and only lock for the modification phase; both follow ASCY3 (a parse that
//! shows the update cannot succeed returns without locking). They differ in
//! *how* the modification phase locks:
//!
//! * [`HerlihySkipList`] locks the predecessors at **all** levels of the
//!   tower, validates them, and performs the whole update at once
//!   (Herlihy, Lev, Luchangco, Shavit — "A simple optimistic skiplist
//!   algorithm").
//! * [`PughSkipList`] locks **one level at a time**, linking/unlinking the
//!   node level by level (Pugh — "Concurrent Maintenance of Skip Lists").

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;
use ascylib_sync::TtasLock;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::skiplist::{random_level, MAX_LEVEL};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    toplevel: usize,
    marked: AtomicBool,
    fully_linked: AtomicBool,
    lock: TtasLock,
    next: [AtomicPtr<Node>; MAX_LEVEL],
}

fn empty_tower() -> [AtomicPtr<Node>; MAX_LEVEL] {
    std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut()))
}

fn new_node(key: u64, value: u64, toplevel: usize) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        toplevel,
        marked: AtomicBool::new(false),
        fully_linked: AtomicBool::new(false),
        lock: TtasLock::new(),
        next: empty_tower(),
    })
}

/// Shared skeleton of the two lock-based skip lists.
struct SkipListBase {
    head: *mut Node,
    tail: *mut Node,
}

// SAFETY: shared node state is atomic, updates are serialized by per-node
// locks, and removed nodes are retired through SSMEM (readers hold guards).
unsafe impl Send for SkipListBase {}
// SAFETY: see above.
unsafe impl Sync for SkipListBase {}

impl SkipListBase {
    fn new() -> Self {
        let tail = new_node(u64::MAX, 0, MAX_LEVEL);
        let head = new_node(0, 0, MAX_LEVEL);
        // SAFETY: freshly allocated sentinels.
        // Relaxed: the list is private until the constructor returns; handing
        // `Self` to another thread synchronizes.
        unsafe {
            for level in 0..MAX_LEVEL {
                (*head).next[level].store(tail, Ordering::Relaxed);
            }
            (*head).fully_linked.store(true, Ordering::Relaxed);
            (*tail).fully_linked.store(true, Ordering::Relaxed);
        }
        Self { head, tail }
    }

    /// Optimistic descent recording predecessors and successors at every
    /// level; returns the highest level at which the key was found.
    ///
    /// Caller must hold an SSMEM guard.
    fn find(
        &self,
        key: u64,
        preds: &mut [*mut Node; MAX_LEVEL],
        succs: &mut [*mut Node; MAX_LEVEL],
    ) -> Option<usize> {
        let mut found = None;
        let mut traversed = 0u64;
        // SAFETY: the guard protects every traversed node from reclamation.
        unsafe {
            let mut pred = self.head;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = (*pred).next[level].load(Ordering::Acquire);
                while (*curr).key < key {
                    pred = curr;
                    curr = (*curr).next[level].load(Ordering::Acquire);
                    traversed += 1;
                }
                if found.is_none() && (*curr).key == key {
                    found = Some(level);
                }
                preds[level] = pred;
                succs[level] = curr;
            }
        }
        stats::record_traversal(traversed);
        found
    }

    /// Wait-free search shared by both algorithms (ASCY1).
    fn search(&self, key: u64) -> Option<u64> {
        let _guard = ssmem::protect();
        let mut traversed = 0u64;
        stats::record_operation();
        // SAFETY: guard protects the traversal.
        unsafe {
            let mut pred = self.head;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = (*pred).next[level].load(Ordering::Acquire);
                while (*curr).key < key {
                    pred = curr;
                    curr = (*curr).next[level].load(Ordering::Acquire);
                    traversed += 1;
                }
                if (*curr).key == key {
                    stats::record_traversal(traversed);
                    return if (*curr).fully_linked.load(Ordering::Acquire)
                        && !(*curr).marked.load(Ordering::Acquire)
                    {
                        Some((*curr).value.load(Ordering::Acquire))
                    } else {
                        None
                    };
                }
            }
        }
        stats::record_traversal(traversed);
        None
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        // SAFETY: guard protects the traversal.
        unsafe {
            let mut curr = (*self.head).next[0].load(Ordering::Acquire);
            while curr != self.tail {
                if !(*curr).marked.load(Ordering::Acquire)
                    && (*curr).fully_linked.load(Ordering::Acquire)
                {
                    count += 1;
                }
                curr = (*curr).next[0].load(Ordering::Acquire);
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn chain_live(&self) -> bool {
        self.fully_linked.load(Ordering::Acquire) && !self.marked.load(Ordering::Acquire)
    }

    fn chain_next(&self) -> *mut Self {
        self.next[0].load(Ordering::Acquire)
    }
}

impl RangeWalk for SkipListBase {
    /// Store-free range traversal shared by both lock-based algorithms
    /// (the wait-free-search discipline, extended across a key range): the
    /// upper levels find the last node with key `< lo`, the level-0 lane is
    /// then walked like a list, skipping in-flight and marked towers.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every traversed node.
        unsafe {
            let mut pred = self.head;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = (*pred).next[level].load(Ordering::Acquire);
                while (*curr).key < lo {
                    pred = curr;
                    curr = (*curr).next[level].load(Ordering::Acquire);
                }
            }
            walk_chain(pred, lo, visit);
        }
    }
}

impl_ordered_map!(HerlihySkipList, via base);
impl_ordered_map!(PughSkipList, via base);

impl Drop for SkipListBase {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; free the level-0 chain.
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = if curr == self.tail {
                    std::ptr::null_mut()
                } else {
                    (*curr).next[0].load(Ordering::Relaxed)
                };
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Herlihy et al. optimistic skip list
// ---------------------------------------------------------------------------

/// The Herlihy/Lev/Luchangco/Shavit optimistic skip list (lock-based).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::skiplist::HerlihySkipList;
///
/// let sl = HerlihySkipList::new();
/// assert!(sl.insert(12, 120));
/// assert_eq!(sl.remove(12), Some(120));
/// ```
pub struct HerlihySkipList {
    base: SkipListBase,
}

impl HerlihySkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self { base: SkipListBase::new() }
    }

    /// Unlocks the distinct predecessors locked so far (levels `0..=highest`).
    ///
    /// # Safety
    ///
    /// The caller must have locked exactly the distinct predecessors of
    /// levels `0..=highest` in `preds`.
    unsafe fn unlock_preds(preds: &[*mut Node; MAX_LEVEL], highest: usize) {
        let mut prev: *mut Node = std::ptr::null_mut();
        for (level, &pred) in preds.iter().enumerate().take(highest + 1) {
            let _ = level;
            if pred != prev {
                // SAFETY: per contract, this predecessor was locked by us.
                unsafe { (*pred).lock.unlock() };
            }
            prev = pred;
        }
    }

    /// Locks the distinct predecessors for levels `0..toplevel` and validates
    /// them. Returns the highest locked level on success, or `Err(highest)`
    /// if validation failed after locking up to `highest` (which may be
    /// `usize::MAX` if nothing was locked).
    ///
    /// # Safety
    ///
    /// `preds`/`succs` must come from `find` under the current guard.
    unsafe fn lock_and_validate(
        preds: &[*mut Node; MAX_LEVEL],
        succs: &[*mut Node; MAX_LEVEL],
        toplevel: usize,
    ) -> Result<usize, Option<usize>> {
        let mut highest: Option<usize> = None;
        let mut prev: *mut Node = std::ptr::null_mut();
        for level in 0..toplevel {
            let pred = preds[level];
            let succ = succs[level];
            // SAFETY: guard keeps pred/succ alive.
            unsafe {
                if pred != prev {
                    (*pred).lock.lock();
                    stats::record_lock();
                    highest = Some(level);
                    prev = pred;
                }
                let valid = !(*pred).marked.load(Ordering::Acquire)
                    && !(*succ).marked.load(Ordering::Acquire)
                    && (*pred).next[level].load(Ordering::Acquire) == succ;
                if !valid {
                    return Err(highest);
                }
            }
        }
        Ok(toplevel - 1)
    }
}

impl ConcurrentMap for HerlihySkipList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        self.base.search(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let toplevel = random_level();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        loop {
            let found = self.base.find(key, &mut preds, &mut succs);
            // SAFETY: guard protects all nodes in preds/succs.
            unsafe {
                if let Some(level) = found {
                    let node = succs[level];
                    if !(*node).marked.load(Ordering::Acquire) {
                        // ASCY3: fail without storing (wait only for an
                        // in-flight linker, as the original does).
                        while !(*node).fully_linked.load(Ordering::Acquire) {
                            stats::record_wait();
                            std::hint::spin_loop();
                        }
                        stats::record_operation();
                        return false;
                    }
                    // Marked: it is being removed; retry.
                    stats::record_restart();
                    continue;
                }
                match Self::lock_and_validate(&preds, &succs, toplevel) {
                    Err(highest) => {
                        if let Some(h) = highest {
                            Self::unlock_preds(&preds, h);
                        }
                        stats::record_restart();
                        continue;
                    }
                    Ok(_) => {
                        let node = new_node(key, value, toplevel);
                        // Relaxed: the node is private until the Release
                        // stores below link it level by level.
                        for level in 0..toplevel {
                            (*node).next[level].store(succs[level], Ordering::Relaxed);
                        }
                        for level in 0..toplevel {
                            (*preds[level]).next[level].store(node, Ordering::Release);
                            stats::record_store();
                        }
                        (*node).fully_linked.store(true, Ordering::Release);
                        stats::record_store();
                        Self::unlock_preds(&preds, toplevel - 1);
                        stats::record_operation();
                        return true;
                    }
                }
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut victim: *mut Node = std::ptr::null_mut();
        let mut is_marked = false;
        let mut toplevel = 0usize;
        loop {
            let found = self.base.find(key, &mut preds, &mut succs);
            // SAFETY: guard protects all nodes; the victim's lock and mark
            // serialize concurrent removers.
            unsafe {
                if !is_marked {
                    match found {
                        None => {
                            stats::record_operation();
                            return None;
                        }
                        Some(level) => {
                            let candidate = succs[level];
                            let deletable = (*candidate).fully_linked.load(Ordering::Acquire)
                                && (*candidate).toplevel == level + 1
                                && !(*candidate).marked.load(Ordering::Acquire);
                            if !deletable {
                                if (*candidate).marked.load(Ordering::Acquire) {
                                    // Already being removed by someone else.
                                    stats::record_operation();
                                    return None;
                                }
                                stats::record_restart();
                                continue;
                            }
                            victim = candidate;
                            toplevel = (*victim).toplevel;
                            (*victim).lock.lock();
                            stats::record_lock();
                            if (*victim).marked.load(Ordering::Acquire) {
                                (*victim).lock.unlock();
                                stats::record_operation();
                                return None;
                            }
                            (*victim).marked.store(true, Ordering::Release);
                            stats::record_store();
                            is_marked = true;
                        }
                    }
                }
                // Lock and validate the predecessors at every level.
                let mut valid = true;
                let mut highest: Option<usize> = None;
                let mut prev: *mut Node = std::ptr::null_mut();
                for level in 0..toplevel {
                    let pred = preds[level];
                    if pred != prev {
                        (*pred).lock.lock();
                        stats::record_lock();
                        highest = Some(level);
                        prev = pred;
                    }
                    if (*pred).marked.load(Ordering::Acquire)
                        || (*pred).next[level].load(Ordering::Acquire) != victim
                    {
                        valid = false;
                        break;
                    }
                }
                if !valid {
                    if let Some(h) = highest {
                        Self::unlock_preds(&preds, h);
                    }
                    stats::record_restart();
                    continue;
                }
                let value = (*victim).value.load(Ordering::Acquire);
                for level in (0..toplevel).rev() {
                    (*preds[level])
                        .next[level]
                        .store((*victim).next[level].load(Ordering::Acquire), Ordering::Release);
                    stats::record_store();
                }
                (*victim).lock.unlock();
                Self::unlock_preds(&preds, toplevel - 1);
                ssmem::retire(victim);
                stats::record_operation();
                return Some(value);
            }
        }
    }

    fn size(&self) -> usize {
        self.base.size()
    }
}

impl Default for HerlihySkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HerlihySkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HerlihySkipList").field("size", &self.size()).finish()
    }
}

// ---------------------------------------------------------------------------
// Pugh's skip list
// ---------------------------------------------------------------------------

/// Pugh's concurrent skip list (lock-based, per-level locking).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::skiplist::PughSkipList;
///
/// let sl = PughSkipList::new();
/// assert!(sl.insert(8, 80));
/// assert_eq!(sl.search(8), Some(80));
/// ```
pub struct PughSkipList {
    base: SkipListBase,
}

impl PughSkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self { base: SkipListBase::new() }
    }

    /// Locks the predecessor of `key` at `level`, starting from the hint
    /// `start`, and returns `(pred, succ)` with `pred` locked and validated
    /// (`pred` unmarked and `pred.next[level] == succ` with
    /// `succ.key >= key`).
    ///
    /// # Safety
    ///
    /// `start` must be a protected node (head sentinel or a node reached
    /// under the current guard) with `start.key < key`.
    unsafe fn lock_level(&self, key: u64, level: usize, start: *mut Node) -> (*mut Node, *mut Node) {
        // SAFETY: the guard protects every node reached through next
        // pointers; a locked, unmarked predecessor cannot be unlinked.
        unsafe {
            let mut pred = start;
            loop {
                // Advance optimistically (no locks, ASCY2).
                let mut curr = (*pred).next[level].load(Ordering::Acquire);
                while (*curr).key < key {
                    pred = curr;
                    curr = (*curr).next[level].load(Ordering::Acquire);
                }
                (*pred).lock.lock();
                stats::record_lock();
                let succ = (*pred).next[level].load(Ordering::Acquire);
                if !(*pred).marked.load(Ordering::Acquire)
                    && (*succ).key >= key
                {
                    return (pred, succ);
                }
                (*pred).lock.unlock();
                if (*pred).marked.load(Ordering::Acquire) {
                    // Fall back to the head if our hint got removed.
                    pred = self.base.head;
                }
                stats::record_restart();
            }
        }
    }
}

impl ConcurrentMap for PughSkipList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        self.base.search(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let found = self.base.find(key, &mut preds, &mut succs);
        // SAFETY: guard protects the traversed nodes.
        unsafe {
            if let Some(level) = found {
                if !(*succs[level]).marked.load(Ordering::Acquire) {
                    // ASCY3: read-only failure.
                    stats::record_operation();
                    return false;
                }
            }
            let toplevel = random_level();
            let node = new_node(key, value, toplevel);
            // Link level by level, bottom-up, locking one predecessor at a
            // time (Pugh's protocol).
            for level in 0..toplevel {
                let start = if preds[level].is_null() { self.base.head } else { preds[level] };
                let start = if (*start).marked.load(Ordering::Acquire) { self.base.head } else { start };
                let (pred, succ) = self.lock_level(key, level, start);
                if level == 0 && (*succ).key == key && !(*succ).marked.load(Ordering::Acquire) {
                    // A concurrent insert won the race at the bottom level.
                    (*pred).lock.unlock();
                    ssmem::dealloc_immediate(node);
                    stats::record_operation();
                    return false;
                }
                if level > 0 && (*succ).key == key && succ != node {
                    // Another tower with this key appeared above level 0:
                    // link in front of it (it is being removed or was the
                    // loser of a race; level-0 uniqueness is what defines
                    // membership).
                }
                // Relaxed: readers reach `node` at this level only through
                // the Release store of `pred.next[level]` just below, which
                // orders this store before the publication.
                (*node).next[level].store(succ, Ordering::Relaxed);
                (*pred).next[level].store(node, Ordering::Release);
                stats::record_store();
                (*pred).lock.unlock();
            }
            (*node).fully_linked.store(true, Ordering::Release);
            stats::record_store();
            stats::record_operation();
            true
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let found = self.base.find(key, &mut preds, &mut succs);
        // SAFETY: guard protects the traversed nodes; the victim's lock and
        // mark serialize concurrent removers; the victim is retired only
        // after it is unlinked from every level.
        unsafe {
            let Some(level_found) = found else {
                stats::record_operation();
                return None;
            };
            let victim = succs[level_found];
            if (*victim).marked.load(Ordering::Acquire) {
                stats::record_operation();
                return None;
            }
            // Wait for the tower to be fully linked before unlinking it, so
            // no level resurrects the node afterwards.
            while !(*victim).fully_linked.load(Ordering::Acquire) {
                stats::record_wait();
                std::hint::spin_loop();
            }
            (*victim).lock.lock();
            stats::record_lock();
            if (*victim).marked.load(Ordering::Acquire) {
                (*victim).lock.unlock();
                stats::record_operation();
                return None;
            }
            (*victim).marked.store(true, Ordering::Release);
            stats::record_store();
            (*victim).lock.unlock();
            let value = (*victim).value.load(Ordering::Acquire);
            let toplevel = (*victim).toplevel;
            // Unlink level by level, top-down, locking one predecessor at a
            // time. The victim must be unlinked from *every* level before it
            // can be retired (other towers with the same key may sit next to
            // it, so the traversal advances until it reaches the victim
            // itself or provably passes it).
            for level in (0..toplevel).rev() {
                'level: loop {
                    let mut pred = if preds[level].is_null()
                        || (*preds[level]).marked.load(Ordering::Acquire)
                    {
                        self.base.head
                    } else {
                        preds[level]
                    };
                    // Advance to the direct predecessor of the victim.
                    loop {
                        let curr = (*pred).next[level].load(Ordering::Acquire);
                        if curr == victim {
                            break;
                        }
                        if (*curr).key > key {
                            // Not linked at this level (the inserting thread
                            // only publishes `fully_linked` after linking all
                            // levels, so a missing level here means the node
                            // was never linked at it).
                            break 'level;
                        }
                        pred = curr;
                    }
                    (*pred).lock.lock();
                    stats::record_lock();
                    if !(*pred).marked.load(Ordering::Acquire)
                        && (*pred).next[level].load(Ordering::Acquire) == victim
                    {
                        (*pred)
                            .next[level]
                            .store((*victim).next[level].load(Ordering::Acquire), Ordering::Release);
                        stats::record_store();
                        (*pred).lock.unlock();
                        break 'level;
                    }
                    (*pred).lock.unlock();
                    stats::record_restart();
                }
            }
            ssmem::retire(victim);
            stats::record_operation();
            Some(value)
        }
    }

    fn size(&self) -> usize {
        self.base.size()
    }
}

impl Default for PughSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PughSkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PughSkipList").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn herlihy_basic_semantics() {
        let sl = HerlihySkipList::new();
        for k in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            let _ = sl.insert(k, k);
        }
        assert_eq!(sl.size(), 7);
        assert_eq!(sl.search(9), Some(9));
        assert_eq!(sl.remove(9), Some(9));
        assert_eq!(sl.remove(9), None);
        assert_eq!(sl.size(), 6);
    }

    #[test]
    fn pugh_basic_semantics() {
        let sl = PughSkipList::new();
        for k in 1..=100u64 {
            assert!(sl.insert(k, k * 2));
        }
        assert_eq!(sl.size(), 100);
        for k in (1..=100u64).step_by(3) {
            assert_eq!(sl.remove(k), Some(k * 2));
        }
        for k in 1..=100u64 {
            let expected = if (k - 1) % 3 == 0 { None } else { Some(k * 2) };
            assert_eq!(sl.search(k), expected, "key {k}");
        }
    }
}
