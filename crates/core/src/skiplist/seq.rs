//! The sequential ("asynchronized") skip list.
//!
//! Like [`crate::list::AsyncList`], this is the paper's `async` skip-list
//! baseline: the sequential algorithm shared without synchronization. All
//! shared fields are `Relaxed` atomics (so the Rust implementation is free
//! of data races) and garbage collection is disabled. Under concurrent
//! updates the structure may become malformed — the paper observes exactly
//! this (towers whose pointers are not properly set, leading to longer
//! average path lengths) — but it remains traversable.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::skiplist::{random_level, MAX_LEVEL};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    toplevel: usize,
    next: [AtomicPtr<Node>; MAX_LEVEL],
}

fn empty_tower() -> [AtomicPtr<Node>; MAX_LEVEL] {
    std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut()))
}

fn new_node(key: u64, value: u64, toplevel: usize) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        toplevel,
        next: empty_tower(),
    })
}

/// The asynchronized (sequential) skip list.
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::skiplist::AsyncSkipList;
///
/// let sl = AsyncSkipList::new();
/// assert!(sl.insert(4, 40));
/// assert_eq!(sl.search(4), Some(40));
/// ```
pub struct AsyncSkipList {
    head: *mut Node,
    tail: *mut Node,
}

// SAFETY: shared fields are atomics; nodes are never reclaimed during the
// structure's lifetime (GC disabled, as in the paper's async runs).
unsafe impl Send for AsyncSkipList {}
// SAFETY: see above.
unsafe impl Sync for AsyncSkipList {}

impl AsyncSkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        let tail = new_node(u64::MAX, 0, MAX_LEVEL);
        let head = new_node(0, 0, MAX_LEVEL);
        // SAFETY: freshly allocated sentinels.
        unsafe {
            for level in 0..MAX_LEVEL {
                (*head).next[level].store(tail, Ordering::Relaxed);
            }
        }
        Self { head, tail }
    }

    /// Standard skip-list descent recording the predecessor at every level.
    fn find(&self, key: u64, preds: &mut [*mut Node; MAX_LEVEL], succs: &mut [*mut Node; MAX_LEVEL]) {
        let mut traversed = 0u64;
        // SAFETY: nodes are never reclaimed while the structure is alive.
        unsafe {
            let mut pred = self.head;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = (*pred).next[level].load(Ordering::Relaxed);
                while (*curr).key < key {
                    pred = curr;
                    curr = (*curr).next[level].load(Ordering::Relaxed);
                    traversed += 1;
                }
                preds[level] = pred;
                succs[level] = curr;
            }
        }
        stats::record_traversal(traversed);
    }
}

impl ConcurrentMap for AsyncSkipList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let mut traversed = 0u64;
        stats::record_operation();
        // SAFETY: nodes are never reclaimed while the structure is alive.
        unsafe {
            let mut pred = self.head;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = (*pred).next[level].load(Ordering::Relaxed);
                while (*curr).key < key {
                    pred = curr;
                    curr = (*curr).next[level].load(Ordering::Relaxed);
                    traversed += 1;
                }
                if (*curr).key == key {
                    stats::record_traversal(traversed);
                    return Some((*curr).value.load(Ordering::Relaxed));
                }
            }
            stats::record_traversal(traversed);
            None
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        self.find(key, &mut preds, &mut succs);
        stats::record_operation();
        // SAFETY: sequential algorithm; nodes are alive for the structure's
        // lifetime.
        unsafe {
            if (*succs[0]).key == key {
                return false;
            }
            let toplevel = random_level();
            let node = new_node(key, value, toplevel);
            for level in 0..toplevel {
                (*node).next[level].store(succs[level], Ordering::Relaxed);
                (*preds[level]).next[level].store(node, Ordering::Relaxed);
                stats::record_store();
            }
            true
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        self.find(key, &mut preds, &mut succs);
        stats::record_operation();
        // SAFETY: sequential algorithm; removed nodes are intentionally not
        // retired (GC disabled for asynchronized runs).
        unsafe {
            let victim = succs[0];
            if (*victim).key != key {
                return None;
            }
            let value = (*victim).value.load(Ordering::Relaxed);
            for level in 0..(*victim).toplevel {
                if (*preds[level]).next[level].load(Ordering::Relaxed) == victim {
                    (*preds[level])
                        .next[level]
                        .store((*victim).next[level].load(Ordering::Relaxed), Ordering::Relaxed);
                    stats::record_store();
                }
            }
            Some(value)
        }
    }

    fn size(&self) -> usize {
        let mut count = 0;
        // SAFETY: level-0 chain traversal; nodes alive for the structure's
        // lifetime.
        unsafe {
            let mut curr = (*self.head).next[0].load(Ordering::Relaxed);
            while curr != self.tail {
                count += 1;
                curr = (*curr).next[0].load(Ordering::Relaxed);
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        // Relaxed: the asynchronized baseline performs exactly a sequential
        // skip list's accesses.
        self.value.load(Ordering::Relaxed)
    }

    fn chain_live(&self) -> bool {
        true
    }

    fn chain_next(&self) -> *mut Self {
        self.next[0].load(Ordering::Relaxed)
    }
}

impl RangeWalk for AsyncSkipList {
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        // SAFETY: nodes are never reclaimed while the structure is alive
        // (GC disabled for asynchronized baselines).
        unsafe {
            let mut pred = self.head;
            for level in (0..MAX_LEVEL).rev() {
                let mut curr = (*pred).next[level].load(Ordering::Relaxed);
                while (*curr).key < lo {
                    pred = curr;
                    curr = (*curr).next[level].load(Ordering::Relaxed);
                }
            }
            walk_chain(pred, lo, visit);
        }
    }
}

impl_ordered_map!(AsyncSkipList);

impl Default for AsyncSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AsyncSkipList {
    fn drop(&mut self) {
        // SAFETY: exclusive access; walk the level-0 chain and free each node
        // once (removed nodes were leaked deliberately).
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = if curr == self.tail {
                    std::ptr::null_mut()
                } else {
                    (*curr).next[0].load(Ordering::Relaxed)
                };
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

impl std::fmt::Debug for AsyncSkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncSkipList").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let sl = AsyncSkipList::new();
        for k in [9u64, 2, 7, 4, 11] {
            assert!(sl.insert(k, k * 10));
        }
        assert!(!sl.insert(7, 0));
        assert_eq!(sl.size(), 5);
        assert_eq!(sl.search(11), Some(110));
        assert_eq!(sl.remove(2), Some(20));
        assert_eq!(sl.search(2), None);
        assert_eq!(sl.size(), 4);
    }

    #[test]
    fn many_keys_keep_level0_sorted() {
        let sl = AsyncSkipList::new();
        for k in (1..=500u64).rev() {
            assert!(sl.insert(k, k));
        }
        assert_eq!(sl.size(), 500);
        for k in 1..=500u64 {
            assert_eq!(sl.search(k), Some(k));
        }
    }
}
