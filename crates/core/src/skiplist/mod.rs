//! Concurrent skip lists (Table 1, "skip list" rows).
//!
//! | Name | Type | Algorithm |
//! |------|------|-----------|
//! | [`AsyncSkipList`] | seq | Sequential skip list (asynchronized baseline). |
//! | [`PughSkipList`] | lb | Pugh's skip list: lock-free parse, per-level locking of predecessors. |
//! | [`HerlihySkipList`] | lb | Herlihy/Lev/Luchangco/Shavit optimistic skip list: lock all levels, validate, update. |
//! | [`FraserSkipList`] | lf | Fraser's lock-free skip list (CAS per level, search helps clean up and restarts). |
//! | [`FraserOptSkipList`] | lf | Fraser re-engineered with ASCY1–2 (`fraser-opt` in Figure 5): wait-free search, no restarts on failed clean-up. |
//!
//! All variants store towers of up to [`MAX_LEVEL`] forward pointers; level
//! heights are drawn from the usual geometric distribution (p = ½).

// Skip-list code walks the parallel `preds`/`succs` arrays by level index;
// clippy's iterator-with-enumerate rewrite obscures that symmetry.
#[allow(clippy::needless_range_loop)]
mod fraser;
#[allow(clippy::needless_range_loop)]
mod optimistic;
#[allow(clippy::needless_range_loop)]
mod seq;

pub use fraser::{FraserOptSkipList, FraserSkipList};
pub use optimistic::{HerlihySkipList, PughSkipList};
pub use seq::AsyncSkipList;

use std::cell::Cell;

/// Maximum tower height of any node.
pub const MAX_LEVEL: usize = 24;

thread_local! {
    static LEVEL_RNG: Cell<u64> = const { Cell::new(0x9E37_79B9_7F4A_7C15) };
}

/// Draws a tower height in `[1, MAX_LEVEL]` from a geometric distribution
/// with p = ½ (each additional level is half as likely).
pub(crate) fn random_level() -> usize {
    LEVEL_RNG.with(|cell| {
        let mut x = cell.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        cell.set(x);
        let level = (x.trailing_ones() as usize) + 1;
        level.min(MAX_LEVEL)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn random_level_distribution_is_geometric() {
        let mut counts = [0usize; MAX_LEVEL + 1];
        let samples = 100_000;
        for _ in 0..samples {
            let l = random_level();
            assert!((1..=MAX_LEVEL).contains(&l));
            counts[l] += 1;
        }
        // Roughly half of the samples are level 1, a quarter level 2, ...
        assert!(counts[1] > samples / 3, "level-1 fraction too small: {}", counts[1]);
        assert!(counts[2] > samples / 6);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
    }

    #[test]
    fn herlihy_skiplist_full_suite() {
        testing::full_suite(HerlihySkipList::new);
    }

    #[test]
    fn pugh_skiplist_full_suite() {
        testing::full_suite(PughSkipList::new);
    }

    #[test]
    fn fraser_skiplist_full_suite() {
        testing::full_suite(FraserSkipList::new);
    }

    #[test]
    fn fraser_opt_skiplist_full_suite() {
        testing::full_suite(FraserOptSkipList::new);
    }

    #[test]
    fn all_skiplists_ordered_model_check() {
        testing::ordered_model_check(HerlihySkipList::new, 1_500);
        testing::ordered_model_check(PughSkipList::new, 1_500);
        testing::ordered_model_check(FraserSkipList::new, 1_500);
        testing::ordered_model_check(FraserOptSkipList::new, 1_500);
        testing::ordered_model_check(AsyncSkipList::new, 1_500);
    }

    #[test]
    fn async_skiplist_sequential_suite() {
        testing::sequential_suite(AsyncSkipList::new);
        testing::model_check(AsyncSkipList::new, 3_000);
    }
}
