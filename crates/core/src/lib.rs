//! # ASCYLIB-RS — Asynchronized Concurrency for search data structures
//!
//! A Rust reproduction of **ASCYLIB**, the concurrent-search-data-structure
//! (CSDS) library from the ASPLOS'15 paper *"Asynchronized Concurrency: The
//! Secret to Scaling Concurrent Search Data Structures"* (David, Guerraoui,
//! Trigonakis).
//!
//! The paper identifies four programming patterns — **ASCY1–4** — that make
//! concurrent search data structures resemble their sequential counterparts
//! in how they access shared memory, and shows that such structures are
//! *portably scalable*: they scale across platforms, workloads and metrics
//! (throughput, latency, energy).
//!
//! This crate provides:
//!
//! * [`list`] — eight linked-list algorithms (sequential/asynchronized,
//!   coupling, pugh, lazy, copy, harris, michael, harris-opt).
//! * [`hashtable`] — hash tables built from those lists plus the
//!   ConcurrentHashMap-style `java` table, RCU-style `urcu` table, TBB-style
//!   reader-writer table, and the paper's new **CLHT** (cache-line hash
//!   table) in lock-based and lock-free variants.
//! * [`skiplist`] — sequential, pugh, herlihy, fraser and fraser-opt skip
//!   lists.
//! * [`bst`] — sequential internal/external trees, the lock-free `ellen` and
//!   `natarajan` external trees, and the paper's new **BST-TK**. The
//!   remaining trees the paper evaluates (`howley`, `drachsler`, `bronson`)
//!   are roadmap items and are not implemented yet; see the [`bst`] module
//!   docs for the gap list.
//! * [`asynchronized`] — the "incorrect asynchronized" baselines used as
//!   performance upper bounds in the paper's evaluation.
//! * [`stats`] — per-thread instrumentation (shared stores, CAS, restarts,
//!   traversal lengths) that feeds the cache-miss and energy models of the
//!   benchmark harness.
//! * [`registry`] — a name → constructor registry over every implementation,
//!   used by the benchmark harness to sweep all algorithms.
//!
//! All structures implement the [`ConcurrentMap`] trait:
//! a set of `u64 → u64` key/value pairs with `search`/`insert`/`remove`, the
//! exact interface of Figure 1 in the paper. The key-sorted families (lists,
//! skip lists, BSTs) additionally implement [`OrderedMap`] —
//! `range_search`/`scan` range queries with documented non-snapshot
//! semantics (see [`ordered`]).
//!
//! # Quick start
//!
//! ```
//! use ascylib::api::ConcurrentMap;
//! use ascylib::hashtable::ClhtLb;
//!
//! let map = ClhtLb::with_capacity(1024);
//! assert!(map.insert(42, 4200));
//! assert_eq!(map.search(42), Some(4200));
//! assert_eq!(map.remove(42), Some(4200));
//! assert_eq!(map.search(42), None);
//! ```
//!
//! # ASCY patterns (paper §5)
//!
//! * **ASCY1** — a search involves no waiting, retries, or stores.
//! * **ASCY2** — the parse phase of an update performs no stores except for
//!   clean-up, and no waiting or retries.
//! * **ASCY3** — an update whose parse is unsuccessful performs no stores.
//! * **ASCY4** — the number and region of stores of a successful update are
//!   close to a sequential implementation's.
//!
//! Each module documents which patterns its algorithms follow or violate.

#![warn(missing_docs)]

pub mod api;
pub mod asynchronized;
pub mod bst;
pub mod hashtable;
pub mod list;
pub mod marked;
pub mod ordered;
pub mod registry;
pub mod skiplist;
pub mod stats;
#[doc(hidden)]
pub mod testing;

pub use api::{ConcurrentMap, KEY_MAX, KEY_MIN};
pub use ordered::OrderedMap;
