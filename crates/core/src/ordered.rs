//! The ordered-map extension of the CSDS interface: range scans.
//!
//! [`crate::api`] defines the paper's three point operations. Every
//! key-sorted structure in the library (linked lists, skip lists, BSTs —
//! everything except the hash tables) can additionally answer *range*
//! queries by continuing the very traversal its point operations already
//! perform: the wait-free read-side walk the ASCY patterns mandate is
//! exactly a range scan that stops after one key. This module productizes
//! that observation as the [`OrderedMap`] trait plus a small set of reusable
//! walkers, so each structure only contributes its traversal primitive
//! instead of re-implementing the scan logic.
//!
//! # Scan semantics
//!
//! Range operations are **not** snapshots. The guarantee is deliberately the
//! weakest one that is still useful (and that every backing can provide
//! without slowing down its point operations):
//!
//! * every returned pair `(k, v)` was present in the structure **at some
//!   point during the scan** (no phantoms: a never-inserted pair is never
//!   returned, and a pair removed *before* the scan started and not
//!   re-inserted is never returned);
//! * returned keys are **strictly ascending** and within the requested
//!   bounds (no duplicates, no out-of-range keys);
//! * a key that is present for the *entire duration* of the scan is
//!   returned; keys inserted or removed *while* the scan runs may or may
//!   not appear.
//!
//! There is no atomicity across the returned set: two pairs in one result
//! may never have been in the structure at the same instant.

use std::sync::Arc;

use crate::api::{ConcurrentMap, KEY_MAX, KEY_MIN};
use crate::stats;

/// A [`ConcurrentMap`] whose elements are key-ordered and support range
/// scans.
///
/// See the [module documentation](self) for the (non-snapshot) consistency
/// contract shared by all implementations.
pub trait OrderedMap: ConcurrentMap {
    /// Appends every element with key in `[lo, hi]` (both inclusive,
    /// clamped to the usable key range) to `out`, in strictly ascending key
    /// order. Returns the number of elements appended.
    ///
    /// `out` is caller-supplied so that hot paths can reuse one allocation
    /// across scans.
    fn range_search(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) -> usize;

    /// Returns up to `n` elements with key `>= from`, in strictly ascending
    /// key order (the classic YCSB-E "short range scan": a cursor position
    /// and a limit).
    fn scan(&self, from: u64, n: usize) -> Vec<(u64, u64)>;

    /// [`Self::scan`] into a caller-supplied buffer (appended, like
    /// [`Self::range_search`]), so hot paths can reuse one allocation across
    /// scans. Returns the number of elements appended.
    ///
    /// The default delegates to `scan` (and therefore still allocates);
    /// implementations backed by the walker layer override it with a
    /// zero-allocation version.
    fn scan_into(&self, from: u64, n: usize, out: &mut Vec<(u64, u64)>) -> usize {
        let got = self.scan(from, n);
        let len = got.len();
        out.extend(got);
        len
    }
}

/// Shared handles delegate like the [`ConcurrentMap`] blanket impl, so an
/// `Arc<dyn OrderedMap>` is itself an `OrderedMap` (and composite layers
/// such as sharded maps can be built over either).
impl<M: OrderedMap + ?Sized> OrderedMap for Arc<M> {
    fn range_search(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) -> usize {
        (**self).range_search(lo, hi, out)
    }

    fn scan(&self, from: u64, n: usize) -> Vec<(u64, u64)> {
        (**self).scan(from, n)
    }

    fn scan_into(&self, from: u64, n: usize, out: &mut Vec<(u64, u64)>) -> usize {
        (**self).scan_into(from, n, out)
    }
}

// ---------------------------------------------------------------------------
// The reusable walker layer (crate-internal)
// ---------------------------------------------------------------------------

/// The traversal primitive a structure contributes to get [`OrderedMap`]
/// for free (via [`range_search_walk`] / [`scan_walk`] and the
/// [`impl_ordered_map!`](crate::impl_ordered_map) macro).
///
/// Contract: visit live pairs with key `>= lo` in *approximately* ascending
/// key order, stopping as soon as `visit` returns `false`. "Approximately"
/// means concurrent interference may make the walk revisit a key or step
/// backwards (e.g. Pugh's pointer reversal); the wrappers restore the public
/// strictly-ascending guarantee by filtering. Implementations must provide
/// whatever memory protection their traversal needs (SSMEM guard, locks).
pub(crate) trait RangeWalk {
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool);
}

/// [`OrderedMap::range_search`] on top of a [`RangeWalk`]: clamps the
/// bounds, filters to strictly-ascending in-range keys, counts one
/// operation.
pub(crate) fn range_search_walk<W: RangeWalk + ?Sized>(
    walker: &W,
    lo: u64,
    hi: u64,
    out: &mut Vec<(u64, u64)>,
) -> usize {
    stats::record_operation();
    let lo = lo.max(KEY_MIN);
    let hi = hi.min(KEY_MAX);
    if lo > hi {
        return 0;
    }
    let start_len = out.len();
    let mut last: Option<u64> = None;
    walker.walk(lo, &mut |key, value| {
        if key > hi {
            return false;
        }
        if key >= lo && last.map_or(true, |l| key > l) {
            out.push((key, value));
            last = Some(key);
        }
        true
    });
    out.len() - start_len
}

/// [`OrderedMap::scan`] on top of a [`RangeWalk`].
pub(crate) fn scan_walk<W: RangeWalk + ?Sized>(walker: &W, from: u64, n: usize) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(n.min(64));
    scan_into_walk(walker, from, n, &mut out);
    out
}

/// [`OrderedMap::scan_into`] on top of a [`RangeWalk`]: appends to `out`
/// without allocating.
pub(crate) fn scan_into_walk<W: RangeWalk + ?Sized>(
    walker: &W,
    from: u64,
    n: usize,
    out: &mut Vec<(u64, u64)>,
) -> usize {
    stats::record_operation();
    if n == 0 {
        return 0;
    }
    let start_len = out.len();
    let from = from.max(KEY_MIN);
    let mut last: Option<u64> = None;
    walker.walk(from, &mut |key, value| {
        if key >= from && last.map_or(true, |l| key > l) {
            out.push((key, value));
            last = Some(key);
        }
        out.len() - start_len < n
    });
    out.len() - start_len
}

/// Implements [`OrderedMap`] for a type, delegating to the shared walker
/// wrappers. The one-argument form requires the type itself to implement
/// [`RangeWalk`]; the `via` form delegates to a field that does (for
/// new-type wrappers like the two Fraser variants).
macro_rules! impl_ordered_map {
    ($ty:ty) => {
        impl $crate::ordered::OrderedMap for $ty {
            fn range_search(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) -> usize {
                $crate::ordered::range_search_walk(self, lo, hi, out)
            }

            fn scan(&self, from: u64, n: usize) -> Vec<(u64, u64)> {
                $crate::ordered::scan_walk(self, from, n)
            }

            fn scan_into(&self, from: u64, n: usize, out: &mut Vec<(u64, u64)>) -> usize {
                $crate::ordered::scan_into_walk(self, from, n, out)
            }
        }
    };
    ($ty:ty, via $field:ident) => {
        impl $crate::ordered::OrderedMap for $ty {
            fn range_search(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) -> usize {
                $crate::ordered::range_search_walk(&self.$field, lo, hi, out)
            }

            fn scan(&self, from: u64, n: usize) -> Vec<(u64, u64)> {
                $crate::ordered::scan_walk(&self.$field, from, n)
            }

            fn scan_into(&self, from: u64, n: usize, out: &mut Vec<(u64, u64)>) -> usize {
                $crate::ordered::scan_into_walk(&self.$field, from, n, out)
            }
        }
    };
}
pub(crate) use impl_ordered_map;

/// A node in a key-sorted chain ending in a `u64::MAX` tail sentinel — the
/// common shape of every linked list and of the level-0 lane of every skip
/// list. Implementing this (plus [`RangeWalk`] in terms of [`walk_chain`])
/// is all a chain-shaped structure needs to become an [`OrderedMap`].
pub(crate) trait ChainNode {
    /// This node's key (sentinels: `0` head, `u64::MAX` tail).
    fn chain_key(&self) -> u64;
    /// This node's value.
    fn chain_value(&self) -> u64;
    /// Whether the node is logically present (unmarked / fully linked).
    fn chain_live(&self) -> bool;
    /// The next node in key order (never null before the tail sentinel).
    fn chain_next(&self) -> *mut Self;
}

/// Walks the chain starting *after* `start` (a node with key `< lo`, e.g.
/// the head sentinel or a skip-list predecessor), visiting live pairs with
/// key `>= lo` until the tail sentinel is reached or `visit` returns
/// `false`. Records the traversal length.
///
/// # Safety
///
/// The caller must hold whatever protection (SSMEM guard, lock) makes every
/// node reachable through `chain_next` safe to dereference for the duration
/// of the walk.
pub(crate) unsafe fn walk_chain<N: ChainNode>(
    start: *mut N,
    lo: u64,
    visit: &mut dyn FnMut(u64, u64) -> bool,
) {
    let mut traversed = 0u64;
    // SAFETY: per the function contract.
    unsafe {
        let mut curr = (*start).chain_next();
        while !curr.is_null() {
            let node = &*curr;
            let key = node.chain_key();
            if key == u64::MAX {
                break;
            }
            traversed += 1;
            if key >= lo && node.chain_live() && !visit(key, node.chain_value()) {
                break;
            }
            curr = node.chain_next();
        }
    }
    stats::record_traversal(traversed);
}

/// A node of an *external* BST: routers carry both children, data lives in
/// the leaves (null children), keys route with `key < node.key → left`.
pub(crate) trait TreeNode {
    /// Router key / leaf key (leaf sentinels `0` and `u64::MAX` are
    /// skipped by the walker).
    fn tree_key(&self) -> u64;
    /// Leaf value (unused for routers).
    fn tree_value(&self) -> u64;
    /// `(left, right)` children; both null identifies a leaf.
    fn tree_children(&self) -> (*mut Self, *mut Self);
}

/// In-order walk over the leaves of an external BST rooted at `root`,
/// pruning subtrees that cannot contain keys `>= lo`, until `visit` returns
/// `false`. Records the traversal length.
///
/// # Safety
///
/// As for [`walk_chain`]: the caller provides the protection that makes
/// every reachable node safe to dereference.
pub(crate) unsafe fn walk_tree<N: TreeNode>(
    root: *mut N,
    lo: u64,
    visit: &mut dyn FnMut(u64, u64) -> bool,
) {
    let mut traversed = 0u64;
    let mut pending: Vec<*mut N> = Vec::new();
    let mut curr = root;
    // SAFETY: per the function contract.
    unsafe {
        'walk: loop {
            // Descend to the leftmost leaf that can hold keys >= lo,
            // stacking the right subtrees to visit afterwards.
            loop {
                let node = &*curr;
                traversed += 1;
                let (left, right) = node.tree_children();
                if left.is_null() {
                    let key = node.tree_key();
                    if key >= lo
                        && key != 0
                        && key != u64::MAX
                        && !visit(key, node.tree_value())
                    {
                        break 'walk;
                    }
                    break;
                }
                if lo < node.tree_key() {
                    pending.push(right);
                    curr = left;
                } else {
                    // The whole left subtree is < node.key <= lo.
                    curr = right;
                }
            }
            match pending.pop() {
                Some(next) => curr = next,
                None => break,
            }
        }
    }
    stats::record_traversal(traversed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted walker: replays a fixed visit sequence (which may contain
    /// duplicates and backward jumps, like a concurrently-mutated chain
    /// would) so the wrapper filtering is testable in isolation.
    struct Scripted(Vec<(u64, u64)>);

    impl RangeWalk for Scripted {
        fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
            for &(k, v) in &self.0 {
                if k >= lo && !visit(k, v) {
                    return;
                }
            }
        }
    }

    #[test]
    fn range_search_walk_filters_to_sorted_unique_in_range() {
        let w = Scripted(vec![(2, 20), (5, 50), (4, 40), (5, 51), (7, 70), (9, 90)]);
        let mut out = Vec::new();
        let n = range_search_walk(&w, 3, 8, &mut out);
        // 4 arrives after 5 (backward jump) and the second 5 is a revisit:
        // both are filtered; 2 and 9 are out of range.
        assert_eq!(out, vec![(5, 50), (7, 70)]);
        assert_eq!(n, 2);
    }

    #[test]
    fn range_search_walk_appends_and_counts_only_new_entries() {
        let w = Scripted(vec![(3, 30)]);
        let mut out = vec![(1, 10)];
        let n = range_search_walk(&w, 1, 100, &mut out);
        assert_eq!(n, 1);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn range_search_walk_empty_and_inverted_bounds() {
        let w = Scripted(vec![(3, 30)]);
        let mut out = Vec::new();
        assert_eq!(range_search_walk(&w, 9, 2, &mut out), 0);
        assert_eq!(range_search_walk(&w, 4, u64::MAX, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn scan_walk_honours_the_limit_and_clamps_from() {
        let w = Scripted((1..=20u64).map(|k| (k, k * 2)).collect());
        let got = scan_walk(&w, 0, 5);
        assert_eq!(got, vec![(1, 2), (2, 4), (3, 6), (4, 8), (5, 10)]);
        assert!(scan_walk(&w, 1, 0).is_empty());
        assert_eq!(scan_walk(&w, 18, 10).len(), 3);
    }

    #[test]
    fn scan_into_walk_appends_and_matches_scan() {
        let w = Scripted((1..=20u64).map(|k| (k, k * 2)).collect());
        let mut out = vec![(0, 0)];
        // The limit counts newly appended pairs, not the buffer length.
        assert_eq!(scan_into_walk(&w, 3, 4, &mut out), 4);
        assert_eq!(out.len(), 5);
        assert_eq!(out[1..], scan_walk(&w, 3, 4));
        assert_eq!(scan_into_walk(&w, 3, 0, &mut out), 0);
    }

    #[test]
    fn arc_handles_delegate_ordered_calls() {
        use crate::list::LazyList;

        let inner = Arc::new(LazyList::new());
        for k in [4u64, 2, 8, 6] {
            assert!(inner.insert(k, k * 10));
        }
        let handle: Arc<dyn OrderedMap> = inner.clone();
        // The blanket impl makes the Arc itself usable as an OrderedMap...
        let mut out = Vec::new();
        assert_eq!(OrderedMap::range_search(&handle, 3, 7, &mut out), 2);
        assert_eq!(out, vec![(4, 40), (6, 60)]);
        assert_eq!(OrderedMap::scan(&handle, 5, 2), vec![(6, 60), (8, 80)]);
        // ...agreeing with the concrete structure underneath, and the
        // ConcurrentMap supertrait surface keeps working through it.
        let mut direct = Vec::new();
        inner.range_search(3, 7, &mut direct);
        assert_eq!(out, direct);
        assert_eq!(ConcurrentMap::size(&handle), 4);
        assert!(ConcurrentMap::contains(&handle, 8));
        assert!(!ConcurrentMap::is_empty(&handle));
    }
}
