//! A generic bucket-array hash table built from any list implementation.
//!
//! The original ASCYLIB builds most of its hash tables by instantiating one
//! of its linked lists per bucket, with the bucket's lock (if any) embedded
//! in the list. [`BucketTable`] reproduces that composition for any type that
//! implements [`ConcurrentMap`].

use crate::api::{debug_check_key, ConcurrentMap};

/// A fixed-size bucket-array hash table delegating each bucket to an inner
/// map (normally one of the lists in [`crate::list`]).
///
/// The number of buckets is rounded up to a power of two. There is no
/// resizing: like the original ASCYLIB benchmarks, the table is sized for the
/// expected number of elements up front (the `java` and `tbb` tables provide
/// resizing).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::hashtable::LazyHashTable;
///
/// let table = LazyHashTable::with_buckets(128);
/// assert!(table.insert(7, 70));
/// assert_eq!(table.search(7), Some(70));
/// ```
#[derive(Debug)]
pub struct BucketTable<M> {
    buckets: Box<[M]>,
    mask: u64,
}

/// Fibonacci multiplicative hashing: spreads consecutive keys (the paper's
/// workloads draw keys uniformly from `[1, 2N]`) across buckets.
#[inline]
fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl<M: ConcurrentMap> BucketTable<M> {
    /// Creates a table with at least `buckets` buckets, each built by `make`.
    pub fn new_with(buckets: usize, make: impl Fn() -> M) -> Self {
        let n = buckets.max(1).next_power_of_two();
        let buckets: Vec<M> = (0..n).map(|_| make()).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of buckets in the table.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket(&self, key: u64) -> &M {
        let idx = (hash(key) >> 32) & self.mask;
        &self.buckets[idx as usize]
    }
}

impl<M: ConcurrentMap> ConcurrentMap for BucketTable<M> {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        self.bucket(key).search(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        self.bucket(key).insert(key, value)
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        self.bucket(key).remove(key)
    }

    fn size(&self) -> usize {
        self.buckets.iter().map(|b| b.size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::LazyList;

    #[test]
    fn rounds_bucket_count_to_power_of_two() {
        let t = BucketTable::new_with(100, LazyList::new);
        assert_eq!(t.bucket_count(), 128);
        let t = BucketTable::new_with(0, LazyList::new);
        assert_eq!(t.bucket_count(), 1);
    }

    #[test]
    fn distributes_keys_across_buckets() {
        let t = BucketTable::new_with(16, LazyList::new);
        for k in 1..=256u64 {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.size(), 256);
        // No single bucket should hold everything.
        let max_bucket = t.buckets.iter().map(|b| b.size()).max().unwrap();
        assert!(max_bucket < 256, "hashing must spread keys (max bucket = {max_bucket})");
        for k in 1..=256u64 {
            assert_eq!(t.search(k), Some(k));
            assert_eq!(t.remove(k), Some(k));
        }
        assert!(t.is_empty());
    }
}
