//! Concurrent hash tables (Table 1, "hash table" rows) and the paper's new
//! **CLHT** (cache-line hash table, §6.1).
//!
//! | Name | Type | Algorithm |
//! |------|------|-----------|
//! | [`AsyncHashTable`] | seq | One sequential list per bucket (asynchronized baseline). |
//! | [`CouplingHashTable`] | flb | One lock-coupling list per bucket. |
//! | [`PughHashTable`] | lb | One Pugh list per bucket. |
//! | [`LazyHashTable`] | lb | One lazy list per bucket. |
//! | [`CopyHashTable`] | lb | One copy-on-write list per bucket. |
//! | [`HarrisHashTable`] | lf | One Harris(-opt) list per bucket. |
//! | [`UrcuHashTable`] | lb | RCU-style table: removals wait for a grace period before freeing. |
//! | [`JavaHashTable`] | lb | ConcurrentHashMap-style striped table (512 locks) with resizing. |
//! | [`TbbHashTable`] | flb | TBB-style table with per-bucket reader-writer locks. |
//! | [`ClhtLb`] | lb | Cache-line hash table, lock-based variant. |
//! | [`ClhtLf`] | lf | Cache-line hash table, lock-free variant (`snapshot_t`). |
//!
//! The list-per-bucket tables are built by composing [`BucketTable`] with the
//! corresponding algorithm from [`crate::list`], exactly like the original
//! ASCYLIB builds its hash tables from its lists.

mod bucket;
mod clht_lb;
mod clht_lf;
mod java;
mod tbb;
mod urcu;

pub use bucket::BucketTable;
pub use clht_lb::ClhtLb;
pub use clht_lf::ClhtLf;
pub use java::JavaHashTable;
pub use tbb::TbbHashTable;
pub use urcu::UrcuHashTable;

use crate::list::{
    AsyncList, CopyList, CouplingList, HarrisOptList, LazyList, PughList,
};

/// Asynchronized hash table: one sequential list per bucket (the paper's
/// `async` hash-table baseline; not linearizable under concurrency).
pub type AsyncHashTable = BucketTable<AsyncList>;

/// Hash table with one hand-over-hand (lock-coupling) list per bucket.
pub type CouplingHashTable = BucketTable<CouplingList>;

/// Hash table with one Pugh list per bucket.
pub type PughHashTable = BucketTable<PughList>;

/// Hash table with one lazy list per bucket.
pub type LazyHashTable = BucketTable<LazyList>;

/// Hash table with one copy-on-write list per bucket.
pub type CopyHashTable = BucketTable<CopyList>;

/// Hash table with one ASCY-compliant Harris list per bucket (the paper's
/// `harris` hash table uses the `harris-opt` list).
pub type HarrisHashTable = BucketTable<HarrisOptList>;

impl AsyncHashTable {
    /// Creates a table with `buckets` sequential-list buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        BucketTable::new_with(buckets, AsyncList::new)
    }
}

impl CouplingHashTable {
    /// Creates a table with `buckets` lock-coupling buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        BucketTable::new_with(buckets, CouplingList::new)
    }
}

impl PughHashTable {
    /// Creates a table with `buckets` Pugh-list buckets (ASCY3 enabled).
    pub fn with_buckets(buckets: usize) -> Self {
        BucketTable::new_with(buckets, PughList::new)
    }

    /// The `pugh-no` variant of Figure 6 (ASCY3 disabled).
    pub fn with_buckets_no_ascy3(buckets: usize) -> Self {
        BucketTable::new_with(buckets, PughList::without_ascy3)
    }
}

impl LazyHashTable {
    /// Creates a table with `buckets` lazy-list buckets (ASCY3 enabled).
    pub fn with_buckets(buckets: usize) -> Self {
        BucketTable::new_with(buckets, LazyList::new)
    }

    /// The `lazy-no` variant of Figure 6 (ASCY3 disabled).
    pub fn with_buckets_no_ascy3(buckets: usize) -> Self {
        BucketTable::new_with(buckets, LazyList::without_ascy3)
    }
}

impl CopyHashTable {
    /// Creates a table with `buckets` copy-on-write buckets (ASCY3 enabled).
    pub fn with_buckets(buckets: usize) -> Self {
        BucketTable::new_with(buckets, CopyList::new)
    }

    /// The `copy-no` variant of Figure 6 (ASCY3 disabled).
    pub fn with_buckets_no_ascy3(buckets: usize) -> Self {
        BucketTable::new_with(buckets, CopyList::without_ascy3)
    }
}

impl HarrisHashTable {
    /// Creates a table with `buckets` lock-free buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        BucketTable::new_with(buckets, HarrisOptList::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn lazy_hash_table_full_suite() {
        testing::full_suite(|| LazyHashTable::with_buckets(64));
    }

    #[test]
    fn pugh_hash_table_full_suite() {
        testing::full_suite(|| PughHashTable::with_buckets(64));
    }

    #[test]
    fn copy_hash_table_full_suite() {
        testing::full_suite(|| CopyHashTable::with_buckets(64));
    }

    #[test]
    fn coupling_hash_table_full_suite() {
        testing::full_suite(|| CouplingHashTable::with_buckets(64));
    }

    #[test]
    fn harris_hash_table_full_suite() {
        testing::full_suite(|| HarrisHashTable::with_buckets(64));
    }

    #[test]
    fn java_hash_table_full_suite() {
        testing::full_suite(|| JavaHashTable::with_capacity(64));
    }

    #[test]
    fn java_hash_table_no_ascy3_full_suite() {
        testing::full_suite(|| JavaHashTable::with_capacity_no_ascy3(64));
    }

    #[test]
    fn tbb_hash_table_full_suite() {
        testing::full_suite(|| TbbHashTable::with_buckets(64));
    }

    #[test]
    fn urcu_hash_table_full_suite() {
        testing::full_suite(|| UrcuHashTable::with_buckets(64));
    }

    #[test]
    fn urcu_ssmem_hash_table_full_suite() {
        testing::full_suite(|| UrcuHashTable::with_buckets_ssmem(64));
    }

    #[test]
    fn clht_lb_full_suite() {
        testing::full_suite(|| ClhtLb::with_capacity(64));
    }

    #[test]
    fn clht_lf_full_suite() {
        testing::full_suite(|| ClhtLf::with_capacity(64));
    }

    #[test]
    fn async_hash_table_sequential_suite() {
        testing::sequential_suite(|| AsyncHashTable::with_buckets(16));
        testing::model_check(|| AsyncHashTable::with_buckets(16), 2_000);
    }

    #[test]
    fn small_bucket_counts_force_collisions() {
        // A single bucket degenerates to the underlying list: all keys
        // collide and ordering within the bucket is exercised.
        testing::sequential_suite(|| LazyHashTable::with_buckets(1));
        testing::sequential_suite(|| ClhtLb::with_capacity(1));
        testing::sequential_suite(|| ClhtLf::with_capacity(1));
    }
}
