//! An RCU-style hash table (`urcu` in Table 1).
//!
//! The paper evaluates the userspace-RCU (`liburcu`) hash table, whose
//! defining property is that **removals wait for all ongoing operations to
//! complete (a grace period) before freeing memory** — read-side critical
//! sections never block, but updates pay for the quiescence wait. The paper
//! also builds a re-engineered variant that keeps the RCU read-side but
//! frees memory through SSMEM instead of waiting, bringing the update path
//! closer to ASCY4.
//!
//! Both variants are provided here: [`UrcuHashTable::with_buckets`] waits
//! for a grace period on every removal (classic RCU), while
//! [`UrcuHashTable::with_buckets_ssmem`] retires removed nodes through the
//! SSMEM allocator.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use ascylib_ssmem as ssmem;
use ascylib_sync::TicketLock;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    next: AtomicPtr<Node>,
}

fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        next: AtomicPtr::new(next),
    })
}

struct Bucket {
    lock: TicketLock,
    head: AtomicPtr<Node>,
}

/// How the table releases removed nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reclamation {
    /// Wait for a full grace period (`synchronize_rcu`) and free immediately.
    WaitForReaders,
    /// Retire through SSMEM (the paper's ASCY4-leaning re-engineered
    /// variant).
    Ssmem,
}

/// The RCU-style hash table.
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::hashtable::UrcuHashTable;
///
/// let t = UrcuHashTable::with_buckets(64);
/// assert!(t.insert(3, 30));
/// assert_eq!(t.remove(3), Some(30));
/// ```
pub struct UrcuHashTable {
    buckets: Box<[Bucket]>,
    mask: u64,
    count: AtomicUsize,
    reclamation: Reclamation,
}

// SAFETY: chains are mutated only under the per-bucket lock; readers run
// inside SSMEM guards (the RCU read-side critical section) and removed nodes
// are freed only after a grace period (either an explicit synchronize or the
// SSMEM retire path).
unsafe impl Send for UrcuHashTable {}
// SAFETY: see above.
unsafe impl Sync for UrcuHashTable {}

impl UrcuHashTable {
    /// Creates the classic RCU table: removals wait for all ongoing
    /// operations before freeing memory.
    pub fn with_buckets(buckets: usize) -> Self {
        Self::build(buckets, Reclamation::WaitForReaders)
    }

    /// Creates the re-engineered variant that frees through SSMEM instead of
    /// waiting (closer to ASCY4; see §3 of the paper).
    pub fn with_buckets_ssmem(buckets: usize) -> Self {
        Self::build(buckets, Reclamation::Ssmem)
    }

    fn build(buckets: usize, reclamation: Reclamation) -> Self {
        let n = buckets.max(1).next_power_of_two();
        let buckets: Vec<Bucket> = (0..n)
            .map(|_| Bucket { lock: TicketLock::new(), head: AtomicPtr::new(std::ptr::null_mut()) })
            .collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            mask: (n - 1) as u64,
            count: AtomicUsize::new(0),
            reclamation,
        }
    }

    #[inline]
    fn bucket(&self, key: u64) -> &Bucket {
        let idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask;
        &self.buckets[idx as usize]
    }

    /// Read-side chain lookup. Caller must hold an SSMEM guard (the RCU
    /// read-side critical section).
    fn chain_search(bucket: &Bucket, key: u64) -> Option<u64> {
        let mut traversed = 0u64;
        // SAFETY: caller's guard keeps unlinked nodes alive until it ends.
        unsafe {
            let mut curr = bucket.head.load(Ordering::Acquire);
            while !curr.is_null() {
                traversed += 1;
                if (*curr).key == key {
                    stats::record_traversal(traversed);
                    return Some((*curr).value.load(Ordering::Acquire));
                }
                curr = (*curr).next.load(Ordering::Acquire);
            }
            stats::record_traversal(traversed);
            None
        }
    }
}

impl ConcurrentMap for UrcuHashTable {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        stats::record_operation();
        Self::chain_search(self.bucket(key), key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let bucket = self.bucket(key);
        // RCU writers always serialize on the bucket lock (liburcu's
        // lock-free insert is CAS-based, but its cost profile matches a
        // short critical section; the paper classifies urcu as lock-based).
        bucket.lock.lock();
        stats::record_lock();
        let result = if Self::chain_search(bucket, key).is_some() {
            false
        } else {
            let head = bucket.head.load(Ordering::Acquire);
            bucket.head.store(new_node(key, value, head), Ordering::Release);
            stats::record_store();
            // Relaxed: `count` only feeds the non-linearizable `size()`.
            self.count.fetch_add(1, Ordering::Relaxed);
            true
        };
        bucket.lock.unlock();
        stats::record_operation();
        result
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let bucket = self.bucket(key);
        let victim;
        {
            let _guard = ssmem::protect();
            bucket.lock.lock();
            stats::record_lock();
            // SAFETY: chain mutation under the bucket lock; the victim stays
            // allocated until after the grace period below.
            victim = unsafe {
                let mut prev: *const AtomicPtr<Node> = &bucket.head;
                let mut curr = (*prev).load(Ordering::Acquire);
                let mut found = None;
                while !curr.is_null() {
                    if (*curr).key == key {
                        let value = (*curr).value.load(Ordering::Acquire);
                        (*prev).store((*curr).next.load(Ordering::Acquire), Ordering::Release);
                        stats::record_store();
                        // Relaxed: `count` only feeds the non-linearizable `size()`.
                        self.count.fetch_sub(1, Ordering::Relaxed);
                        found = Some((curr, value));
                        break;
                    }
                    prev = &(*curr).next;
                    curr = (*prev).load(Ordering::Acquire);
                }
                found
            };
            bucket.lock.unlock();
            stats::record_operation();
        }
        // Grace period handling happens outside the read-side critical
        // section (a reader must not wait for itself).
        match victim {
            None => None,
            Some((node, value)) => {
                match self.reclamation {
                    Reclamation::WaitForReaders => {
                        // synchronize_rcu(): wait for every ongoing operation
                        // to finish, then free immediately.
                        stats::record_wait();
                        ssmem::synchronize();
                        // SAFETY: the node is unlinked and every operation
                        // that could have observed it has completed.
                        unsafe { ssmem::dealloc_immediate(node) };
                    }
                    Reclamation::Ssmem => {
                        // SAFETY: the node is unlinked; SSMEM delays reuse
                        // until the grace period expires.
                        unsafe { ssmem::retire(node) };
                    }
                }
                Some(value)
            }
        }
    }

    fn size(&self) -> usize {
        // Relaxed: `size()` is documented as non-linearizable.
        self.count.load(Ordering::Relaxed)
    }
}

impl Drop for UrcuHashTable {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access.
        unsafe {
            for bucket in self.buckets.iter() {
                let mut curr = bucket.head.load(Ordering::Relaxed);
                while !curr.is_null() {
                    let next = (*curr).next.load(Ordering::Relaxed);
                    ssmem::dealloc_immediate(curr);
                    curr = next;
                }
            }
        }
    }
}

impl std::fmt::Debug for UrcuHashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UrcuHashTable")
            .field("reclamation", &self.reclamation)
            .field("buckets", &self.buckets.len())
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics_wait_variant() {
        let t = UrcuHashTable::with_buckets(8);
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert_eq!(t.search(5), Some(50));
        assert_eq!(t.remove(5), Some(50));
        assert_eq!(t.remove(5), None);
    }

    #[test]
    fn basic_semantics_ssmem_variant() {
        let t = UrcuHashTable::with_buckets_ssmem(8);
        for k in 1..=32u64 {
            assert!(t.insert(k, k));
        }
        for k in 1..=32u64 {
            assert_eq!(t.remove(k), Some(k));
        }
        assert!(t.is_empty());
    }
}
