//! CLHT-LF: the lock-free cache-line hash table (§6.1 of the paper).
//!
//! The lock-free variant keeps the one-cache-line bucket layout of
//! [`super::ClhtLb`] but replaces the bucket lock with the paper's
//! `snapshot_t` object occupying the concurrency word:
//!
//! ```text
//! struct snapshot_t { uint32_t version; uint8_t map[4]; }
//! ```
//!
//! The `map` bytes describe the state of each key/value slot (invalid,
//! valid, or being inserted) and the version number lets updates perform
//! atomic changes with a single CAS on the whole word: an insert first
//! *claims* an empty slot by CAS-ing its map byte to `INSERTING` (bumping
//! the version), writes the key/value pair into the claimed slot, and then
//! publishes it by CAS-ing the byte to `VALID`. A removal simply CAS-es the
//! byte back to `INVALID`. Searches read the snapshot word and the key/value
//! pair without ever storing (ASCY1).
//!
//! Deviations from the original: the original CLHT-LF grows by resizing the
//! whole table with helping; this implementation instead links overflow
//! buckets (like CLHT-LB) and resolves the rare duplicate-insert races that
//! chaining introduces with a deterministic "earliest slot wins"
//! post-validation, documented in `DESIGN.md`.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::stats;

/// Number of key/value pairs per cache-line bucket.
const ENTRIES: usize = 3;

/// Slot states stored in the `map` bytes of the snapshot word.
mod slot {
    pub const INVALID: u8 = 0;
    pub const VALID: u8 = 1;
    pub const INSERTING: u8 = 2;
}

/// Helpers for manipulating the packed `snapshot_t` word:
/// low 32 bits = version, bytes 4..7 = map[0..3] (byte 7 unused).
mod snap {
    /// Extracts the state of slot `i`.
    #[inline]
    pub fn map(word: u64, i: usize) -> u8 {
        ((word >> (32 + 8 * i)) & 0xFF) as u8
    }

    /// Returns `word` with slot `i` set to `state` and the version bumped.
    #[inline]
    pub fn with_map(word: u64, i: usize, state: u8) -> u64 {
        let version = (word as u32).wrapping_add(1) as u64;
        let shift = 32 + 8 * i;
        let cleared = word & !(0xFFu64 << shift) & !0xFFFF_FFFFu64;
        cleared | version | ((state as u64) << shift)
    }
}

#[repr(C, align(64))]
struct Bucket {
    snapshot: AtomicU64,
    keys: [AtomicU64; ENTRIES],
    vals: [AtomicU64; ENTRIES],
    next: AtomicPtr<Bucket>,
}

/// A slot located by a chain scan: `(bucket, slot index, snapshot word at
/// observation time)`.
type SlotRef = (*const Bucket, usize, u64);

impl Bucket {
    fn empty() -> Self {
        Self {
            snapshot: AtomicU64::new(0),
            keys: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            vals: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// The lock-free cache-line hash table (CLHT-LF).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::hashtable::ClhtLf;
///
/// let t = ClhtLf::with_capacity(1024);
/// assert!(t.insert(21, 210));
/// assert_eq!(t.search(21), Some(210));
/// assert_eq!(t.remove(21), Some(210));
/// ```
pub struct ClhtLf {
    buckets: Box<[Bucket]>,
    mask: u64,
}

// SAFETY: every bucket word is an atomic; slots are only written by the
// thread that claimed them through the snapshot CAS; overflow buckets are
// append-only for the lifetime of the table.
unsafe impl Send for ClhtLf {}
// SAFETY: see above.
unsafe impl Sync for ClhtLf {}

impl ClhtLf {
    /// Creates a table with one cache-line bucket per expected element
    /// (rounded up to a power of two).
    pub fn with_capacity(capacity: usize) -> Self {
        let n = capacity.max(1).next_power_of_two();
        let buckets: Vec<Bucket> = (0..n).map(|_| Bucket::empty()).collect();
        Self { buckets: buckets.into_boxed_slice(), mask: (n - 1) as u64 }
    }

    #[inline]
    fn bucket(&self, key: u64) -> &Bucket {
        let idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask;
        &self.buckets[idx as usize]
    }

    /// Wait-free chain search (no stores, no retries beyond the per-pair
    /// snapshot re-read).
    fn chain_search(bucket: &Bucket, key: u64) -> Option<u64> {
        let mut curr: *const Bucket = bucket;
        // SAFETY: the chain is append-only while the table is alive.
        unsafe {
            while !curr.is_null() {
                let b = &*curr;
                let s = b.snapshot.load(Ordering::Acquire);
                for i in 0..ENTRIES {
                    if snap::map(s, i) == slot::VALID && b.keys[i].load(Ordering::Acquire) == key {
                        let val = b.vals[i].load(Ordering::Acquire);
                        // Atomic pair snapshot: the slot is still valid for
                        // this key if the snapshot word did not change.
                        if b.snapshot.load(Ordering::Acquire) == s
                            || b.keys[i].load(Ordering::Acquire) == key
                        {
                            return Some(val);
                        }
                    }
                }
                curr = b.next.load(Ordering::Acquire);
                stats::record_traversal(1);
            }
        }
        None
    }

    /// Scans a chain for `key` among VALID slots; also reports whether any
    /// slot is currently `INSERTING` and the first empty slot found.
    ///
    /// Returns `(found, pending_insert, free_slot, last_bucket)`.
    ///
    /// # Safety
    ///
    /// `bucket` must belong to this (alive) table.
    unsafe fn chain_scan(
        bucket: *const Bucket,
        key: u64,
    ) -> (Option<SlotRef>, bool, Option<SlotRef>, *const Bucket) {
        let mut curr = bucket;
        let mut pending = false;
        let mut free_slot = None;
        let mut last = bucket;
        // SAFETY: chain is append-only.
        unsafe {
            while !curr.is_null() {
                let b = &*curr;
                let s = b.snapshot.load(Ordering::Acquire);
                for i in 0..ENTRIES {
                    match snap::map(s, i) {
                        slot::VALID => {
                            if b.keys[i].load(Ordering::Acquire) == key {
                                return (Some((curr, i, s)), pending, free_slot, last);
                            }
                        }
                        slot::INSERTING => pending = true,
                        _ => {
                            if free_slot.is_none() {
                                free_slot = Some((curr, i, s));
                            }
                        }
                    }
                }
                last = curr;
                curr = b.next.load(Ordering::Acquire);
            }
        }
        (None, pending, free_slot, last)
    }

    /// Post-insert duplicate resolution (see the module docs): if the same
    /// key ended up VALID in two slots, the later slot (in chain-scan order)
    /// is invalidated by its owner; "later" loses.
    ///
    /// Returns `true` if our slot survived.
    ///
    /// # Safety
    ///
    /// `bucket` must be the chain head and `(my_bucket, my_slot)` a slot this
    /// thread just published.
    unsafe fn resolve_duplicates(
        bucket: *const Bucket,
        my_bucket: *const Bucket,
        my_slot: usize,
        key: u64,
    ) -> bool {
        // SAFETY: chain is append-only; we only invalidate the slot we own.
        unsafe {
            let mut curr = bucket;
            while !curr.is_null() {
                let b = &*curr;
                let s = b.snapshot.load(Ordering::Acquire);
                for i in 0..ENTRIES {
                    if snap::map(s, i) == slot::VALID
                        && b.keys[i].load(Ordering::Acquire) == key
                    {
                        if std::ptr::eq(curr, my_bucket) && i == my_slot {
                            // Ours is the earliest occurrence: keep it.
                            return true;
                        }
                        // An earlier occurrence exists: withdraw ours.
                        let mb = &*my_bucket;
                        loop {
                            let ms = mb.snapshot.load(Ordering::Acquire);
                            if snap::map(ms, my_slot) != slot::VALID {
                                break;
                            }
                            let new = snap::with_map(ms, my_slot, slot::INVALID);
                            let ok = mb
                                .snapshot
                                .compare_exchange(ms, new, Ordering::AcqRel, Ordering::Acquire)
                                .is_ok();
                            stats::record_atomic(ok);
                            if ok {
                                break;
                            }
                        }
                        return false;
                    }
                }
                curr = b.next.load(Ordering::Acquire);
            }
            true
        }
    }
}

impl ConcurrentMap for ClhtLf {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        stats::record_operation();
        Self::chain_search(self.bucket(key), key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let head: *const Bucket = self.bucket(key);
        loop {
            // SAFETY: the chain belongs to this table.
            let (found, pending, free_slot, last) = unsafe { Self::chain_scan(head, key) };
            if found.is_some() {
                stats::record_operation();
                return false;
            }
            if pending {
                // Another insert on this bucket is in flight; it may be
                // inserting the same key, so wait for it to resolve.
                stats::record_wait();
                std::hint::spin_loop();
                continue;
            }
            match free_slot {
                Some((bptr, i, s)) => {
                    // SAFETY: bptr is a live bucket of this table.
                    let b = unsafe { &*bptr };
                    // Claim the slot.
                    let claimed = snap::with_map(s, i, slot::INSERTING);
                    let ok = b
                        .snapshot
                        .compare_exchange(s, claimed, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                    stats::record_atomic(ok);
                    if !ok {
                        stats::record_restart();
                        continue;
                    }
                    // We own the slot: write the pair, then publish.
                    b.keys[i].store(key, Ordering::Release);
                    b.vals[i].store(value, Ordering::Release);
                    stats::record_stores(2);
                    loop {
                        let cur = b.snapshot.load(Ordering::Acquire);
                        debug_assert_eq!(snap::map(cur, i), slot::INSERTING);
                        let published = snap::with_map(cur, i, slot::VALID);
                        let ok = b
                            .snapshot
                            .compare_exchange(cur, published, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok();
                        stats::record_atomic(ok);
                        if ok {
                            break;
                        }
                    }
                    // SAFETY: we just published (bptr, i).
                    let survived = unsafe { Self::resolve_duplicates(head, bptr, i, key) };
                    stats::record_operation();
                    return survived;
                }
                None => {
                    // Chain a fresh bucket containing the pair, already VALID.
                    // Relaxed: the bucket is private until the AcqRel CAS on
                    // `last.next` below publishes it.
                    let nb = Bucket::empty();
                    nb.keys[0].store(key, Ordering::Relaxed);
                    nb.vals[0].store(value, Ordering::Relaxed);
                    nb.snapshot.store(snap::with_map(0, 0, slot::VALID), Ordering::Relaxed);
                    let nb = ssmem::alloc(nb);
                    // SAFETY: `last` is a live bucket; the CAS publishes the
                    // fully initialized overflow bucket.
                    let b = unsafe { &*last };
                    let ok = b
                        .next
                        .compare_exchange(
                            std::ptr::null_mut(),
                            nb,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok();
                    stats::record_atomic(ok);
                    if !ok {
                        // Someone else appended first; free ours and rescan.
                        // SAFETY: nb was never published.
                        unsafe { ssmem::dealloc_immediate(nb) };
                        stats::record_restart();
                        continue;
                    }
                    // SAFETY: we just published (nb, 0).
                    let survived = unsafe { Self::resolve_duplicates(head, nb, 0, key) };
                    stats::record_operation();
                    return survived;
                }
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let head: *const Bucket = self.bucket(key);
        loop {
            // SAFETY: the chain belongs to this table.
            let (found, _pending, _free, _last) = unsafe { Self::chain_scan(head, key) };
            match found {
                None => {
                    // ASCY3: no store on an unsuccessful removal.
                    stats::record_operation();
                    return None;
                }
                Some((bptr, i, s)) => {
                    // SAFETY: bptr is a live bucket of this table.
                    let b = unsafe { &*bptr };
                    let value = b.vals[i].load(Ordering::Acquire);
                    let invalidated = snap::with_map(s, i, slot::INVALID);
                    let ok = b
                        .snapshot
                        .compare_exchange(s, invalidated, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                    stats::record_atomic(ok);
                    if ok {
                        stats::record_operation();
                        return Some(value);
                    }
                    stats::record_restart();
                }
            }
        }
    }

    fn size(&self) -> usize {
        let mut count = 0;
        // SAFETY: chain is append-only.
        unsafe {
            for bucket in self.buckets.iter() {
                let mut curr: *const Bucket = bucket;
                while !curr.is_null() {
                    let b = &*curr;
                    let s = b.snapshot.load(Ordering::Acquire);
                    for i in 0..ENTRIES {
                        if snap::map(s, i) == slot::VALID {
                            count += 1;
                        }
                    }
                    curr = b.next.load(Ordering::Acquire);
                }
            }
        }
        count
    }
}

impl Drop for ClhtLf {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; only overflow buckets were heap-allocated
        // through SSMEM.
        unsafe {
            for bucket in self.buckets.iter() {
                let mut curr = bucket.next.load(Ordering::Relaxed);
                while !curr.is_null() {
                    let next = (*curr).next.load(Ordering::Relaxed);
                    ssmem::dealloc_immediate(curr);
                    curr = next;
                }
            }
        }
    }
}

impl std::fmt::Debug for ClhtLf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClhtLf")
            .field("buckets", &self.buckets.len())
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_word_helpers() {
        let w = 0u64;
        assert_eq!(snap::map(w, 0), slot::INVALID);
        let w1 = snap::with_map(w, 1, slot::VALID);
        assert_eq!(snap::map(w1, 1), slot::VALID);
        assert_eq!(snap::map(w1, 0), slot::INVALID);
        assert_eq!(snap::map(w1, 2), slot::INVALID);
        assert_eq!(w1 as u32, 1, "version must be bumped");
        let w2 = snap::with_map(w1, 1, slot::INVALID);
        assert_eq!(snap::map(w2, 1), slot::INVALID);
        assert_eq!(w2 as u32, 2);
    }

    #[test]
    fn bucket_is_exactly_one_cache_line() {
        assert_eq!(std::mem::size_of::<Bucket>(), 64);
    }

    #[test]
    fn basic_semantics() {
        let t = ClhtLf::with_capacity(16);
        assert!(t.insert(1, 10));
        assert!(!t.insert(1, 11));
        assert_eq!(t.search(1), Some(10));
        assert_eq!(t.remove(1), Some(10));
        assert_eq!(t.remove(1), None);
        assert!(t.is_empty());
    }

    #[test]
    fn overflow_chaining_and_slot_reuse() {
        let t = ClhtLf::with_capacity(1);
        for k in 1..=12u64 {
            assert!(t.insert(k, k * 7), "insert({k})");
        }
        assert_eq!(t.size(), 12);
        for k in 1..=12u64 {
            assert_eq!(t.search(k), Some(k * 7));
        }
        for k in (1..=12u64).step_by(2) {
            assert_eq!(t.remove(k), Some(k * 7));
        }
        assert_eq!(t.size(), 6);
        for k in (1..=12u64).step_by(2) {
            assert!(t.insert(k, k), "reinsert({k})");
        }
        assert_eq!(t.size(), 12);
    }
}
