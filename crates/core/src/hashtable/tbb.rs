//! A TBB-style hash table.
//!
//! The paper evaluates Intel Thread Building Blocks'
//! `concurrent_hash_map`, which protects each bucket with a reader-writer
//! lock (fully lock-based: even searches acquire the bucket lock in shared
//! mode). Since TBB is a closed third-party library, this module implements
//! the equivalent synchronization pattern: an array of buckets, each guarded
//! by an [`RwSpinLock`], with an unsorted chain per bucket. Resizing is not
//! implemented (the benchmarks size the table up front), which matches how
//! the paper configures its workloads.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use ascylib_ssmem as ssmem;
use ascylib_sync::RwSpinLock;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    next: AtomicPtr<Node>,
}

fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        next: AtomicPtr::new(next),
    })
}

struct Bucket {
    lock: RwSpinLock,
    head: AtomicPtr<Node>,
}

/// The reader-writer-lock bucket hash table (`tbb` in Table 1).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::hashtable::TbbHashTable;
///
/// let t = TbbHashTable::with_buckets(64);
/// assert!(t.insert(9, 90));
/// assert_eq!(t.remove(9), Some(90));
/// ```
pub struct TbbHashTable {
    buckets: Box<[Bucket]>,
    mask: u64,
    count: AtomicUsize,
}

// SAFETY: every chain access happens while holding the bucket's
// reader-writer lock, and removed nodes are freed only by the writer that
// unlinked them (no other thread can hold a reference without the lock).
unsafe impl Send for TbbHashTable {}
// SAFETY: see above.
unsafe impl Sync for TbbHashTable {}

impl TbbHashTable {
    /// Creates a table with at least `buckets` buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.max(1).next_power_of_two();
        let buckets: Vec<Bucket> = (0..n)
            .map(|_| Bucket { lock: RwSpinLock::new(), head: AtomicPtr::new(std::ptr::null_mut()) })
            .collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            mask: (n - 1) as u64,
            count: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn bucket(&self, key: u64) -> &Bucket {
        let idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask;
        &self.buckets[idx as usize]
    }

    /// Finds `key` in a chain. Caller must hold the bucket lock (shared or
    /// exclusive).
    fn chain_find(bucket: &Bucket, key: u64) -> Option<*mut Node> {
        let mut traversed = 0u64;
        // SAFETY: the bucket lock is held, so the chain cannot change and no
        // node in it can be freed.
        unsafe {
            let mut curr = bucket.head.load(Ordering::Acquire);
            while !curr.is_null() {
                traversed += 1;
                if (*curr).key == key {
                    stats::record_traversal(traversed);
                    return Some(curr);
                }
                curr = (*curr).next.load(Ordering::Acquire);
            }
            stats::record_traversal(traversed);
            None
        }
    }
}

impl ConcurrentMap for TbbHashTable {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let bucket = self.bucket(key);
        bucket.lock.read_lock();
        stats::record_lock();
        // SAFETY: shared lock held.
        let result = Self::chain_find(bucket, key).map(|n| unsafe { (*n).value.load(Ordering::Acquire) });
        bucket.lock.read_unlock();
        stats::record_operation();
        result
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let bucket = self.bucket(key);
        bucket.lock.write_lock();
        stats::record_lock();
        let result = if Self::chain_find(bucket, key).is_some() {
            false
        } else {
            let head = bucket.head.load(Ordering::Acquire);
            bucket.head.store(new_node(key, value, head), Ordering::Release);
            stats::record_store();
            // Relaxed: `count` only feeds the non-linearizable `size()`.
            self.count.fetch_add(1, Ordering::Relaxed);
            true
        };
        bucket.lock.write_unlock();
        stats::record_operation();
        result
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let bucket = self.bucket(key);
        bucket.lock.write_lock();
        stats::record_lock();
        // SAFETY: exclusive lock held; after unlinking, no other thread can
        // reach the node (every chain access requires the lock), so it can
        // be freed immediately — TBB manages its node memory the same way.
        let result = unsafe {
            let mut prev: *const AtomicPtr<Node> = &bucket.head;
            let mut curr = (*prev).load(Ordering::Acquire);
            let mut found = None;
            while !curr.is_null() {
                if (*curr).key == key {
                    let value = (*curr).value.load(Ordering::Acquire);
                    (*prev).store((*curr).next.load(Ordering::Acquire), Ordering::Release);
                    stats::record_store();
                    ssmem::dealloc_immediate(curr);
                    // Relaxed: `count` only feeds the non-linearizable `size()`.
                    self.count.fetch_sub(1, Ordering::Relaxed);
                    found = Some(value);
                    break;
                }
                prev = &(*curr).next;
                curr = (*prev).load(Ordering::Acquire);
            }
            found
        };
        bucket.lock.write_unlock();
        stats::record_operation();
        result
    }

    fn size(&self) -> usize {
        // Relaxed: `size()` is documented as non-linearizable.
        self.count.load(Ordering::Relaxed)
    }
}

impl Drop for TbbHashTable {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access.
        unsafe {
            for bucket in self.buckets.iter() {
                let mut curr = bucket.head.load(Ordering::Relaxed);
                while !curr.is_null() {
                    let next = (*curr).next.load(Ordering::Relaxed);
                    ssmem::dealloc_immediate(curr);
                    curr = next;
                }
            }
        }
    }
}

impl std::fmt::Debug for TbbHashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TbbHashTable")
            .field("buckets", &self.buckets.len())
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let t = TbbHashTable::with_buckets(8);
        for k in 1..=64u64 {
            assert!(t.insert(k, k));
            assert!(!t.insert(k, k));
        }
        assert_eq!(t.size(), 64);
        for k in 1..=64u64 {
            assert_eq!(t.search(k), Some(k));
        }
        for k in 1..=64u64 {
            assert_eq!(t.remove(k), Some(k));
            assert_eq!(t.remove(k), None);
        }
        assert!(t.is_empty());
    }
}
