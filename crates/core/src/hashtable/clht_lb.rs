//! CLHT-LB: the lock-based cache-line hash table (§6.1 of the paper).
//!
//! CLHT captures the basic idea behind ASCY: **avoid cache-line transfers**.
//! Each bucket occupies exactly one cache line (64 bytes = 8 words) laid out
//! as
//!
//! ```text
//! | concurrency | k1 | k2 | k3 | v1 | v2 | v3 | next |
//! ```
//!
//! and updates modify key/value pairs **in place**, so most operations
//! complete with at most one cache-line transfer. Searches obtain an atomic
//! snapshot of each key/value pair (read value, check key, re-check value)
//! and never store (ASCY1). Updates first search to check feasibility
//! (ASCY3), then acquire the bucket lock stored in the concurrency word,
//! re-validate, and modify in place (ASCY4: a successful update stores to a
//! single cache line). If a bucket is full, a new bucket is linked through
//! the `next` pointer (this implementation links overflow buckets instead of
//! resizing the whole table).

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::stats;

/// Number of key/value pairs per cache-line bucket.
pub(crate) const ENTRIES_PER_BUCKET: usize = 3;

/// One cache line: concurrency word, three keys, three values, next pointer.
#[repr(C, align(64))]
pub(crate) struct Bucket {
    lock: AtomicU64,
    keys: [AtomicU64; ENTRIES_PER_BUCKET],
    vals: [AtomicU64; ENTRIES_PER_BUCKET],
    next: AtomicPtr<Bucket>,
}

impl Bucket {
    pub(crate) fn empty() -> Self {
        Self {
            lock: AtomicU64::new(0),
            keys: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            vals: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

fn new_overflow_bucket(key: u64, value: u64) -> *mut Bucket {
    let b = Bucket::empty();
    // Relaxed: the bucket is still private; the caller's `next` store (under
    // the bucket lock) is what publishes it.
    b.keys[0].store(key, Ordering::Relaxed);
    b.vals[0].store(value, Ordering::Relaxed);
    ssmem::alloc(b)
}

/// The lock-based cache-line hash table (CLHT-LB).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::hashtable::ClhtLb;
///
/// let t = ClhtLb::with_capacity(1024);
/// assert!(t.insert(11, 110));
/// assert_eq!(t.search(11), Some(110));
/// assert_eq!(t.remove(11), Some(110));
/// ```
pub struct ClhtLb {
    buckets: Box<[Bucket]>,
    mask: u64,
}

// SAFETY: all bucket words are atomics; in-place updates are serialized by
// the per-bucket lock; overflow buckets are only appended (never unlinked)
// during the table's lifetime, so traversals never touch freed memory.
unsafe impl Send for ClhtLb {}
// SAFETY: see above.
unsafe impl Sync for ClhtLb {}

impl ClhtLb {
    /// Creates a table with one cache-line bucket per expected element
    /// (rounded up to a power of two), i.e. a load factor well below the
    /// three slots per bucket.
    pub fn with_capacity(capacity: usize) -> Self {
        let n = capacity.max(1).next_power_of_two();
        let buckets: Vec<Bucket> = (0..n).map(|_| Bucket::empty()).collect();
        Self { buckets: buckets.into_boxed_slice(), mask: (n - 1) as u64 }
    }

    #[inline]
    fn bucket(&self, key: u64) -> &Bucket {
        let idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask;
        &self.buckets[idx as usize]
    }

    /// Wait-free search of a bucket chain using the paper's atomic key/value
    /// snapshot: read the value, check the key, re-check the value.
    fn chain_search(bucket: &Bucket, key: u64) -> Option<u64> {
        let mut curr: *const Bucket = bucket;
        // SAFETY: overflow buckets are never unlinked while the table is
        // alive, so the chain is always safe to traverse.
        unsafe {
            while !curr.is_null() {
                let b = &*curr;
                for i in 0..ENTRIES_PER_BUCKET {
                    let val = b.vals[i].load(Ordering::Acquire);
                    if b.keys[i].load(Ordering::Acquire) == key {
                        // Atomic snapshot: the pair is consistent only if the
                        // value did not change while we examined the key.
                        if b.vals[i].load(Ordering::Acquire) == val {
                            return Some(val);
                        }
                    }
                }
                curr = b.next.load(Ordering::Acquire);
                stats::record_traversal(1);
            }
        }
        None
    }

    /// Acquires a bucket's lock (word 0 of the cache line).
    fn lock_bucket(bucket: &Bucket) {
        stats::record_lock();
        loop {
            // Relaxed pre-read (TTAS): only the Acquire CAS below synchronizes.
            if bucket.lock.load(Ordering::Relaxed) == 0
                && bucket
                    .lock
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    fn unlock_bucket(bucket: &Bucket) {
        bucket.lock.store(0, Ordering::Release);
    }
}

impl ConcurrentMap for ClhtLb {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        stats::record_operation();
        Self::chain_search(self.bucket(key), key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let bucket = self.bucket(key);
        // ASCY3: check feasibility with a read-only search first.
        if Self::chain_search(bucket, key).is_some() {
            stats::record_operation();
            return false;
        }
        let _guard = ssmem::protect();
        Self::lock_bucket(bucket);
        // Under the lock: re-validate, find a free slot, modify in place.
        let mut curr: *const Bucket = bucket;
        let mut free_slot: Option<(*const Bucket, usize)> = None;
        let mut last: *const Bucket;
        // SAFETY: the chain is stable (append-only) and the lock serializes
        // all modifications of this bucket chain.
        let inserted = unsafe {
            loop {
                let b = &*curr;
                for i in 0..ENTRIES_PER_BUCKET {
                    let k = b.keys[i].load(Ordering::Acquire);
                    if k == key {
                        // Concurrent insert beat us to it.
                        Self::unlock_bucket(bucket);
                        stats::record_operation();
                        return false;
                    }
                    if k == 0 && free_slot.is_none() {
                        free_slot = Some((curr, i));
                    }
                }
                last = curr;
                let next = b.next.load(Ordering::Acquire);
                if next.is_null() {
                    break;
                }
                curr = next;
            }
            match free_slot {
                Some((b, i)) => {
                    let b = &*b;
                    // Value first, then key: a concurrent snapshot only
                    // treats the slot as occupied once the key is visible.
                    b.vals[i].store(value, Ordering::Release);
                    b.keys[i].store(key, Ordering::Release);
                    stats::record_stores(2);
                    true
                }
                None => {
                    // Chain a fresh cache-line bucket.
                    let nb = new_overflow_bucket(key, value);
                    (*last).next.store(nb, Ordering::Release);
                    stats::record_store();
                    true
                }
            }
        };
        Self::unlock_bucket(bucket);
        stats::record_operation();
        inserted
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let bucket = self.bucket(key);
        // ASCY3: read-only failure.
        if Self::chain_search(bucket, key).is_none() {
            stats::record_operation();
            return None;
        }
        Self::lock_bucket(bucket);
        let mut curr: *const Bucket = bucket;
        // SAFETY: chain is append-only; the lock serializes modifications.
        let result = unsafe {
            let mut found = None;
            'outer: while !curr.is_null() {
                let b = &*curr;
                for i in 0..ENTRIES_PER_BUCKET {
                    if b.keys[i].load(Ordering::Acquire) == key {
                        let val = b.vals[i].load(Ordering::Acquire);
                        // In-place removal: clearing the key frees the slot.
                        b.keys[i].store(0, Ordering::Release);
                        stats::record_store();
                        found = Some(val);
                        break 'outer;
                    }
                }
                curr = b.next.load(Ordering::Acquire);
            }
            found
        };
        Self::unlock_bucket(bucket);
        stats::record_operation();
        result
    }

    fn size(&self) -> usize {
        let mut count = 0;
        // SAFETY: chain is append-only.
        unsafe {
            for bucket in self.buckets.iter() {
                let mut curr: *const Bucket = bucket;
                while !curr.is_null() {
                    let b = &*curr;
                    for i in 0..ENTRIES_PER_BUCKET {
                        if b.keys[i].load(Ordering::Acquire) != 0 {
                            count += 1;
                        }
                    }
                    curr = b.next.load(Ordering::Acquire);
                }
            }
        }
        count
    }
}

impl Drop for ClhtLb {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; only heap-allocated overflow buckets are
        // freed (the main array is owned by the Box).
        unsafe {
            for bucket in self.buckets.iter() {
                let mut curr = bucket.next.load(Ordering::Relaxed);
                while !curr.is_null() {
                    let next = (*curr).next.load(Ordering::Relaxed);
                    ssmem::dealloc_immediate(curr);
                    curr = next;
                }
            }
        }
    }
}

impl std::fmt::Debug for ClhtLb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClhtLb")
            .field("buckets", &self.buckets.len())
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_exactly_one_cache_line() {
        assert_eq!(std::mem::size_of::<Bucket>(), 64);
        assert_eq!(std::mem::align_of::<Bucket>(), 64);
    }

    #[test]
    fn basic_semantics() {
        let t = ClhtLb::with_capacity(16);
        assert!(t.insert(1, 10));
        assert!(!t.insert(1, 11));
        assert_eq!(t.search(1), Some(10));
        assert_eq!(t.remove(1), Some(10));
        assert_eq!(t.remove(1), None);
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn overflow_buckets_are_chained() {
        // A single bucket with three slots forces chaining beyond 3 keys.
        let t = ClhtLb::with_capacity(1);
        for k in 1..=10u64 {
            assert!(t.insert(k, k * 2), "insert({k})");
        }
        assert_eq!(t.size(), 10);
        for k in 1..=10u64 {
            assert_eq!(t.search(k), Some(k * 2), "search({k})");
        }
        for k in 1..=10u64 {
            assert_eq!(t.remove(k), Some(k * 2), "remove({k})");
        }
        assert_eq!(t.size(), 0);
        // Freed slots are reused in place.
        for k in 1..=10u64 {
            assert!(t.insert(k, k), "reinsert({k})");
        }
        assert_eq!(t.size(), 10);
    }
}
