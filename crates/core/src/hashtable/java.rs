//! A `java.util.concurrent.ConcurrentHashMap`-style hash table.
//!
//! The table is protected by a fixed number of lock stripes (512, as in the
//! paper's configuration) and supports resizing. Searches traverse the
//! bucket chains without any store; updates lock only the stripe that covers
//! their bucket. With ASCY3 enabled (default), an update first performs a
//! read-only search and fails without touching any lock if it cannot succeed
//! — the paper measures up to 12.5% higher throughput from this change alone
//! (Figure 6), at the cost of an extra search on successful updates.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use ascylib_ssmem as ssmem;
use ascylib_sync::TicketLock;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::stats;

/// Number of lock stripes (the paper uses 512 locks for `java`).
const STRIPES: usize = 512;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    next: AtomicPtr<Node>,
}

fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        next: AtomicPtr::new(next),
    })
}

/// A bucket array; old arrays are kept alive until the table is dropped so
/// that in-flight readers never observe freed slots.
struct Array {
    mask: u64,
    slots: Box<[AtomicPtr<Node>]>,
}

impl Array {
    fn new(buckets: usize) -> Box<Self> {
        let n = buckets.max(1).next_power_of_two();
        let slots: Vec<AtomicPtr<Node>> =
            (0..n).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
        Box::new(Self { mask: (n - 1) as u64, slots: slots.into_boxed_slice() })
    }

    #[inline]
    fn index(&self, key: u64) -> usize {
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask) as usize
    }
}

/// The striped-lock, resizable hash table (`java` in Table 1).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::hashtable::JavaHashTable;
///
/// let t = JavaHashTable::with_capacity(128);
/// assert!(t.insert(1, 10));
/// assert_eq!(t.search(1), Some(10));
/// ```
pub struct JavaHashTable {
    current: AtomicPtr<Array>,
    locks: Box<[TicketLock]>,
    count: AtomicUsize,
    ascy3: bool,
    /// Retired bucket arrays, freed on drop (readers may still traverse
    /// them until their guard ends; keeping them for the structure lifetime
    /// is simpler than retiring a type that owns heap memory).
    graveyard: Mutex<Vec<*mut Array>>,
}

// SAFETY: bucket chains are only mutated under the corresponding stripe
// lock; nodes are retired through SSMEM; replaced arrays stay allocated
// until drop.
unsafe impl Send for JavaHashTable {}
// SAFETY: see above.
unsafe impl Sync for JavaHashTable {}

impl JavaHashTable {
    /// Creates a table sized for `capacity` elements, with ASCY3 enabled.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(capacity, true)
    }

    /// Creates the `java-no` variant of Figure 6 (ASCY3 disabled:
    /// unsuccessful updates still acquire their stripe lock).
    pub fn with_capacity_no_ascy3(capacity: usize) -> Self {
        Self::build(capacity, false)
    }

    fn build(capacity: usize, ascy3: bool) -> Self {
        let locks: Vec<TicketLock> = (0..STRIPES).map(|_| TicketLock::new()).collect();
        Self {
            current: AtomicPtr::new(Box::into_raw(Array::new(capacity))),
            locks: locks.into_boxed_slice(),
            count: AtomicUsize::new(0),
            ascy3,
            graveyard: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn array(&self) -> &Array {
        // SAFETY: the current array is never freed before the table drops.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    #[inline]
    fn stripe(&self, key: u64) -> &TicketLock {
        let idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20) as usize & (STRIPES - 1);
        &self.locks[idx]
    }

    /// Searches a chain. Caller must hold an SSMEM guard.
    fn chain_search(head: &AtomicPtr<Node>, key: u64) -> Option<u64> {
        let mut traversed = 0u64;
        // SAFETY: nodes are retired (not freed) while guarded readers may
        // still traverse them.
        unsafe {
            let mut curr = head.load(Ordering::Acquire);
            while !curr.is_null() {
                traversed += 1;
                if (*curr).key == key {
                    stats::record_traversal(traversed);
                    return Some((*curr).value.load(Ordering::Acquire));
                }
                curr = (*curr).next.load(Ordering::Acquire);
            }
            stats::record_traversal(traversed);
            None
        }
    }

    /// Doubles the bucket array when the load factor exceeds one.
    ///
    /// Called with **no** stripe lock held; it acquires every stripe lock in
    /// index order (so concurrent resizers serialize instead of
    /// deadlocking), re-checks the condition, and rebuilds the array.
    fn resize(&self) {
        for lock in self.locks.iter() {
            lock.lock();
            stats::record_lock();
        }
        let old_ptr = self.current.load(Ordering::Acquire);
        // SAFETY: all stripe locks are held, so no updater is mutating the
        // chains; readers are unaffected because the old array and nodes
        // remain valid.
        unsafe {
            let old = &*old_ptr;
            // Relaxed: `count` is a sizing heuristic, not a synchronization
            // point; a stale read only delays or repeats a resize.
            if self.count.load(Ordering::Relaxed) > old.slots.len() {
                let new = Array::new(old.slots.len() * 2);
                for slot in old.slots.iter() {
                    let mut curr = slot.load(Ordering::Acquire);
                    while !curr.is_null() {
                        let key = (*curr).key;
                        let value = (*curr).value.load(Ordering::Acquire);
                        let idx = new.index(key);
                        // Relaxed: `new` is private until the Release store of
                        // `self.current` publishes the whole array.
                        let head = new.slots[idx].load(Ordering::Relaxed);
                        new.slots[idx].store(new_node(key, value, head), Ordering::Relaxed);
                        stats::record_store();
                        let next = (*curr).next.load(Ordering::Acquire);
                        ssmem::retire(curr);
                        curr = next;
                    }
                }
                let new_ptr = Box::into_raw(new);
                self.current.store(new_ptr, Ordering::Release);
                stats::record_store();
                self.graveyard.lock().expect("graveyard").push(old_ptr);
            }
        }
        for lock in self.locks.iter() {
            lock.unlock();
        }
    }
}

impl ConcurrentMap for JavaHashTable {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let arr = self.array();
        stats::record_operation();
        Self::chain_search(&arr.slots[arr.index(key)], key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        if self.ascy3 {
            let arr = self.array();
            if Self::chain_search(&arr.slots[arr.index(key)], key).is_some() {
                stats::record_operation();
                return false;
            }
        }
        self.stripe(key).lock();
        stats::record_lock();
        // Re-read the array under the lock: a resize may have swapped it.
        let arr = self.array();
        let slot = &arr.slots[arr.index(key)];
        let result = if Self::chain_search(slot, key).is_some() {
            false
        } else {
            let head = slot.load(Ordering::Acquire);
            slot.store(new_node(key, value, head), Ordering::Release);
            stats::record_store();
            // Relaxed: `count` only feeds `size()` and the resize heuristic.
            self.count.fetch_add(1, Ordering::Relaxed);
            true
        };
        let need_resize = result && self.count.load(Ordering::Relaxed) > arr.slots.len();
        self.stripe(key).unlock();
        if need_resize {
            self.resize();
        }
        stats::record_operation();
        result
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        if self.ascy3 {
            let arr = self.array();
            if Self::chain_search(&arr.slots[arr.index(key)], key).is_none() {
                stats::record_operation();
                return None;
            }
        }
        self.stripe(key).lock();
        stats::record_lock();
        let arr = self.array();
        let slot = &arr.slots[arr.index(key)];
        // SAFETY: chain mutation happens only under the stripe lock; the
        // victim is retired after being unlinked.
        let result = unsafe {
            let mut prev: *const AtomicPtr<Node> = slot;
            let mut curr = (*prev).load(Ordering::Acquire);
            let mut found = None;
            while !curr.is_null() {
                if (*curr).key == key {
                    let value = (*curr).value.load(Ordering::Acquire);
                    (*prev).store((*curr).next.load(Ordering::Acquire), Ordering::Release);
                    stats::record_store();
                    ssmem::retire(curr);
                    // Relaxed: `count` only feeds `size()` and the resize heuristic.
                    self.count.fetch_sub(1, Ordering::Relaxed);
                    found = Some(value);
                    break;
                }
                prev = &(*curr).next;
                curr = (*prev).load(Ordering::Acquire);
            }
            found
        };
        self.stripe(key).unlock();
        stats::record_operation();
        result
    }

    fn size(&self) -> usize {
        // Relaxed: `size()` is documented as non-linearizable.
        self.count.load(Ordering::Relaxed)
    }
}

impl Drop for JavaHashTable {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access. Free every chain of the current array,
        // then the current and retired arrays themselves.
        unsafe {
            let arr_ptr = self.current.load(Ordering::Relaxed);
            {
                let arr = &*arr_ptr;
                for slot in arr.slots.iter() {
                    let mut curr = slot.load(Ordering::Relaxed);
                    while !curr.is_null() {
                        let next = (*curr).next.load(Ordering::Relaxed);
                        ssmem::dealloc_immediate(curr);
                        curr = next;
                    }
                }
            }
            drop(Box::from_raw(arr_ptr));
            for &old in self.graveyard.lock().expect("graveyard").iter() {
                drop(Box::from_raw(old));
            }
        }
    }
}

impl std::fmt::Debug for JavaHashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JavaHashTable")
            .field("ascy3", &self.ascy3)
            .field("size", &self.size())
            .field("buckets", &self.array().slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let t = JavaHashTable::with_capacity(16);
        assert!(t.insert(1, 10));
        assert!(!t.insert(1, 11));
        assert_eq!(t.search(1), Some(10));
        assert_eq!(t.remove(1), Some(10));
        assert_eq!(t.remove(1), None);
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn resizing_preserves_contents() {
        let t = JavaHashTable::with_capacity(4);
        for k in 1..=512u64 {
            assert!(t.insert(k, k * 3));
        }
        assert_eq!(t.size(), 512);
        assert!(t.array().slots.len() >= 512, "table must have resized");
        for k in 1..=512u64 {
            assert_eq!(t.search(k), Some(k * 3), "key {k} after resize");
        }
        for k in (1..=512u64).step_by(2) {
            assert_eq!(t.remove(k), Some(k * 3));
        }
        assert_eq!(t.size(), 256);
    }
}
