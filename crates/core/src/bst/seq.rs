//! Sequential ("asynchronized") binary search trees.
//!
//! The paper uses two sequential baselines for BSTs: an *internal* tree
//! (data in every node) and an *external* tree (data only in leaves, router
//! nodes inside). Both are shared without synchronization in the `async`
//! runs; as with the other asynchronized structures, all shared fields are
//! `Relaxed` atomics and removed nodes are not reclaimed.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::ordered::{impl_ordered_map, walk_tree, RangeWalk, TreeNode};
use crate::stats;

// ---------------------------------------------------------------------------
// Internal BST
// ---------------------------------------------------------------------------

#[repr(C)]
struct INode {
    key: AtomicU64,
    value: AtomicU64,
    left: AtomicPtr<INode>,
    right: AtomicPtr<INode>,
}

fn new_inode(key: u64, value: u64) -> *mut INode {
    ssmem::alloc(INode {
        key: AtomicU64::new(key),
        value: AtomicU64::new(value),
        left: AtomicPtr::new(std::ptr::null_mut()),
        right: AtomicPtr::new(std::ptr::null_mut()),
    })
}

/// The asynchronized (sequential) *internal* BST (`async-int` in Figure 2d).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::bst::AsyncBstInternal;
///
/// let t = AsyncBstInternal::new();
/// assert!(t.insert(10, 100));
/// assert_eq!(t.search(10), Some(100));
/// ```
pub struct AsyncBstInternal {
    /// Pseudo-root: its right child is the real root (simplifies removal of
    /// the root itself).
    root: *mut INode,
}

// SAFETY: all shared fields are atomics; nodes are never reclaimed during
// the structure's lifetime.
unsafe impl Send for AsyncBstInternal {}
// SAFETY: see above.
unsafe impl Sync for AsyncBstInternal {}

impl AsyncBstInternal {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self { root: new_inode(0, 0) }
    }
}

impl ConcurrentMap for AsyncBstInternal {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        stats::record_operation();
        let mut traversed = 0u64;
        // SAFETY: nodes live for the structure's lifetime.
        unsafe {
            let mut curr = (*self.root).right.load(Ordering::Relaxed);
            while !curr.is_null() {
                traversed += 1;
                let k = (*curr).key.load(Ordering::Relaxed);
                if k == key {
                    stats::record_traversal(traversed);
                    return Some((*curr).value.load(Ordering::Relaxed));
                }
                curr = if key < k {
                    (*curr).left.load(Ordering::Relaxed)
                } else {
                    (*curr).right.load(Ordering::Relaxed)
                };
            }
        }
        stats::record_traversal(traversed);
        None
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        stats::record_operation();
        // SAFETY: sequential algorithm over never-reclaimed nodes.
        unsafe {
            let mut parent = self.root;
            let mut go_left = false;
            let mut curr = (*self.root).right.load(Ordering::Relaxed);
            while !curr.is_null() {
                let k = (*curr).key.load(Ordering::Relaxed);
                if k == key {
                    return false;
                }
                parent = curr;
                go_left = key < k;
                curr = if go_left {
                    (*curr).left.load(Ordering::Relaxed)
                } else {
                    (*curr).right.load(Ordering::Relaxed)
                };
            }
            let node = new_inode(key, value);
            if parent == self.root {
                (*parent).right.store(node, Ordering::Relaxed);
            } else if go_left {
                (*parent).left.store(node, Ordering::Relaxed);
            } else {
                (*parent).right.store(node, Ordering::Relaxed);
            }
            stats::record_store();
            true
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        stats::record_operation();
        // SAFETY: sequential algorithm; removed nodes are leaked (GC is
        // disabled for asynchronized baselines).
        unsafe {
            let mut parent = self.root;
            let mut go_left = false;
            let mut curr = (*self.root).right.load(Ordering::Relaxed);
            while !curr.is_null() && (*curr).key.load(Ordering::Relaxed) != key {
                parent = curr;
                go_left = key < (*curr).key.load(Ordering::Relaxed);
                curr = if go_left {
                    (*curr).left.load(Ordering::Relaxed)
                } else {
                    (*curr).right.load(Ordering::Relaxed)
                };
            }
            if curr.is_null() {
                return None;
            }
            let value = (*curr).value.load(Ordering::Relaxed);
            let left = (*curr).left.load(Ordering::Relaxed);
            let right = (*curr).right.load(Ordering::Relaxed);
            let replacement = if left.is_null() {
                right
            } else if right.is_null() {
                left
            } else {
                // Two children: replace with the in-order successor's
                // key/value (classic internal-BST removal).
                let mut succ_parent = curr;
                let mut succ = right;
                while !(*succ).left.load(Ordering::Relaxed).is_null() {
                    succ_parent = succ;
                    succ = (*succ).left.load(Ordering::Relaxed);
                }
                (*curr).key.store((*succ).key.load(Ordering::Relaxed), Ordering::Relaxed);
                (*curr)
                    .value
                    .store((*succ).value.load(Ordering::Relaxed), Ordering::Relaxed);
                stats::record_stores(2);
                let succ_right = (*succ).right.load(Ordering::Relaxed);
                if succ_parent == curr {
                    (*succ_parent).right.store(succ_right, Ordering::Relaxed);
                } else {
                    (*succ_parent).left.store(succ_right, Ordering::Relaxed);
                }
                stats::record_store();
                return Some(value);
            };
            if parent == self.root {
                (*parent).right.store(replacement, Ordering::Relaxed);
            } else if go_left {
                (*parent).left.store(replacement, Ordering::Relaxed);
            } else {
                (*parent).right.store(replacement, Ordering::Relaxed);
            }
            stats::record_store();
            Some(value)
        }
    }

    fn size(&self) -> usize {
        // Iterative traversal with an explicit stack.
        let mut count = 0;
        let mut stack = Vec::new();
        // SAFETY: nodes live for the structure's lifetime.
        unsafe {
            let root = (*self.root).right.load(Ordering::Relaxed);
            if !root.is_null() {
                stack.push(root);
            }
            while let Some(n) = stack.pop() {
                count += 1;
                let l = (*n).left.load(Ordering::Relaxed);
                let r = (*n).right.load(Ordering::Relaxed);
                if !l.is_null() {
                    stack.push(l);
                }
                if !r.is_null() {
                    stack.push(r);
                }
            }
        }
        count
    }
}

impl RangeWalk for AsyncBstInternal {
    /// Classic pruned in-order traversal; data lives in every node, so the
    /// shared external-tree walker does not apply.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let mut traversed = 0u64;
        let mut pending: Vec<*mut INode> = Vec::new();
        // SAFETY: nodes are never reclaimed while the structure is alive
        // (GC disabled for asynchronized baselines).
        unsafe {
            let mut curr = (*self.root).right.load(Ordering::Relaxed);
            'walk: loop {
                // Stack every in-range node on the left spine; a node with
                // key < lo prunes itself and its whole left subtree.
                while !curr.is_null() {
                    traversed += 1;
                    if lo <= (*curr).key.load(Ordering::Relaxed) {
                        pending.push(curr);
                        curr = (*curr).left.load(Ordering::Relaxed);
                    } else {
                        curr = (*curr).right.load(Ordering::Relaxed);
                    }
                }
                match pending.pop() {
                    Some(node) => {
                        let key = (*node).key.load(Ordering::Relaxed);
                        if key >= lo && !visit(key, (*node).value.load(Ordering::Relaxed)) {
                            break 'walk;
                        }
                        curr = (*node).right.load(Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        stats::record_traversal(traversed);
    }
}

impl_ordered_map!(AsyncBstInternal);

impl Default for AsyncBstInternal {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AsyncBstInternal {
    fn drop(&mut self) {
        // SAFETY: exclusive access; free every reachable node once.
        unsafe {
            let mut stack = vec![self.root];
            while let Some(n) = stack.pop() {
                let l = (*n).left.load(Ordering::Relaxed);
                let r = (*n).right.load(Ordering::Relaxed);
                if !l.is_null() {
                    stack.push(l);
                }
                if !r.is_null() {
                    stack.push(r);
                }
                ssmem::dealloc_immediate(n);
            }
        }
    }
}

impl std::fmt::Debug for AsyncBstInternal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncBstInternal").field("size", &self.size()).finish()
    }
}

// ---------------------------------------------------------------------------
// External BST
// ---------------------------------------------------------------------------

#[repr(C)]
struct ENode {
    key: u64,
    value: AtomicU64,
    /// Null for leaves.
    left: AtomicPtr<ENode>,
    right: AtomicPtr<ENode>,
}

fn new_enode(key: u64, value: u64) -> *mut ENode {
    ssmem::alloc(ENode {
        key,
        value: AtomicU64::new(value),
        left: AtomicPtr::new(std::ptr::null_mut()),
        right: AtomicPtr::new(std::ptr::null_mut()),
    })
}

/// The asynchronized (sequential) *external* BST (`async-ext` in Figure 2d).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::bst::AsyncBstExternal;
///
/// let t = AsyncBstExternal::new();
/// assert!(t.insert(7, 70));
/// assert_eq!(t.remove(7), Some(70));
/// ```
pub struct AsyncBstExternal {
    root: *mut ENode,
}

// SAFETY: as for the internal variant.
unsafe impl Send for AsyncBstExternal {}
// SAFETY: see above.
unsafe impl Sync for AsyncBstExternal {}

impl AsyncBstExternal {
    /// Creates an empty tree (router root with two sentinel leaves).
    pub fn new() -> Self {
        let root = new_enode(u64::MAX, 0);
        let min_leaf = new_enode(0, 0);
        let max_leaf = new_enode(u64::MAX, 0);
        // SAFETY: freshly allocated nodes.
        unsafe {
            (*root).left.store(min_leaf, Ordering::Relaxed);
            (*root).right.store(max_leaf, Ordering::Relaxed);
        }
        Self { root }
    }

    /// Descends to the leaf for `key`, returning (grandparent, parent, leaf,
    /// parent-went-left, grandparent-went-left).
    fn parse(&self, key: u64) -> (*mut ENode, *mut ENode, *mut ENode, bool, bool) {
        let mut traversed = 0u64;
        // SAFETY: nodes live for the structure's lifetime.
        unsafe {
            let mut gp = std::ptr::null_mut();
            let mut gp_left = false;
            let mut p = self.root;
            let mut p_left = true;
            let mut curr = (*p).left.load(Ordering::Relaxed);
            while !(*curr).left.load(Ordering::Relaxed).is_null() {
                traversed += 1;
                gp = p;
                gp_left = p_left;
                p = curr;
                p_left = key < (*curr).key;
                curr = if p_left {
                    (*curr).left.load(Ordering::Relaxed)
                } else {
                    (*curr).right.load(Ordering::Relaxed)
                };
            }
            stats::record_traversal(traversed);
            (gp, p, curr, p_left, gp_left)
        }
    }
}

impl ConcurrentMap for AsyncBstExternal {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        stats::record_operation();
        let (_, _, leaf, _, _) = self.parse(key);
        // SAFETY: leaf is alive.
        unsafe {
            if (*leaf).key == key {
                Some((*leaf).value.load(Ordering::Relaxed))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        stats::record_operation();
        let (_, p, leaf, p_left, _) = self.parse(key);
        // SAFETY: sequential algorithm over never-reclaimed nodes.
        unsafe {
            if (*leaf).key == key {
                return false;
            }
            let new_leaf = new_enode(key, value);
            let router_key = key.max((*leaf).key);
            let router = new_enode(router_key, 0);
            if key < (*leaf).key {
                (*router).left.store(new_leaf, Ordering::Relaxed);
                (*router).right.store(leaf, Ordering::Relaxed);
            } else {
                (*router).left.store(leaf, Ordering::Relaxed);
                (*router).right.store(new_leaf, Ordering::Relaxed);
            }
            if p_left {
                (*p).left.store(router, Ordering::Relaxed);
            } else {
                (*p).right.store(router, Ordering::Relaxed);
            }
            stats::record_store();
            true
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        stats::record_operation();
        let (gp, p, leaf, p_left, gp_left) = self.parse(key);
        // SAFETY: sequential algorithm; removed nodes are leaked (GC
        // disabled).
        unsafe {
            if (*leaf).key != key {
                return None;
            }
            let value = (*leaf).value.load(Ordering::Relaxed);
            let sibling = if p_left {
                (*p).right.load(Ordering::Relaxed)
            } else {
                (*p).left.load(Ordering::Relaxed)
            };
            // A successful removal always has a real grandparent: real leaves
            // hang below at least one router created by an insert.
            let gp = if gp.is_null() { self.root } else { gp };
            if gp_left {
                (*gp).left.store(sibling, Ordering::Relaxed);
            } else {
                (*gp).right.store(sibling, Ordering::Relaxed);
            }
            stats::record_store();
            Some(value)
        }
    }

    fn size(&self) -> usize {
        let mut count = 0;
        let mut stack = Vec::new();
        // SAFETY: nodes live for the structure's lifetime.
        unsafe {
            stack.push(self.root);
            while let Some(n) = stack.pop() {
                let l = (*n).left.load(Ordering::Relaxed);
                let r = (*n).right.load(Ordering::Relaxed);
                if l.is_null() {
                    // A leaf: count it unless it is a sentinel.
                    let k = (*n).key;
                    if k != 0 && k != u64::MAX {
                        count += 1;
                    }
                } else {
                    stack.push(l);
                    stack.push(r);
                }
            }
        }
        count
    }
}

impl TreeNode for ENode {
    fn tree_key(&self) -> u64 {
        self.key
    }

    fn tree_value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn tree_children(&self) -> (*mut Self, *mut Self) {
        (self.left.load(Ordering::Relaxed), self.right.load(Ordering::Relaxed))
    }
}

impl RangeWalk for AsyncBstExternal {
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        // SAFETY: nodes are never reclaimed while the structure is alive
        // (GC disabled for asynchronized baselines).
        unsafe { walk_tree(self.root, lo, visit) }
    }
}

impl_ordered_map!(AsyncBstExternal);

impl Default for AsyncBstExternal {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AsyncBstExternal {
    fn drop(&mut self) {
        // SAFETY: exclusive access.
        unsafe {
            let mut stack = vec![self.root];
            while let Some(n) = stack.pop() {
                let l = (*n).left.load(Ordering::Relaxed);
                let r = (*n).right.load(Ordering::Relaxed);
                if !l.is_null() {
                    stack.push(l);
                    stack.push(r);
                }
                ssmem::dealloc_immediate(n);
            }
        }
    }
}

impl std::fmt::Debug for AsyncBstExternal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncBstExternal").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_basic_semantics() {
        let t = AsyncBstInternal::new();
        for k in [50u64, 30, 70, 20, 40, 60, 80] {
            assert!(t.insert(k, k));
        }
        assert!(!t.insert(40, 0));
        assert_eq!(t.size(), 7);
        assert_eq!(t.search(60), Some(60));
        // Remove a node with two children (the root of a subtree).
        assert_eq!(t.remove(30), Some(30));
        assert_eq!(t.search(30), None);
        assert_eq!(t.search(20), Some(20));
        assert_eq!(t.search(40), Some(40));
        assert_eq!(t.size(), 6);
        // Remove the root.
        assert_eq!(t.remove(50), Some(50));
        assert_eq!(t.size(), 5);
        for k in [20u64, 40, 60, 70, 80] {
            assert_eq!(t.search(k), Some(k), "key {k}");
        }
    }

    #[test]
    fn external_basic_semantics() {
        let t = AsyncBstExternal::new();
        for k in [5u64, 3, 8, 1, 4, 7, 9] {
            assert!(t.insert(k, k * 10));
        }
        assert!(!t.insert(8, 0));
        assert_eq!(t.size(), 7);
        for k in [5u64, 3, 8, 1, 4, 7, 9] {
            assert_eq!(t.search(k), Some(k * 10), "key {k}");
        }
        assert_eq!(t.remove(3), Some(30));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.search(4), Some(40));
        assert_eq!(t.size(), 6);
    }
}
