//! The lock-free external BST of Ellen, Fatourou, Ruppert and van Breugel
//! (PODC 2010).
//!
//! Every internal node carries an `update` word: a pointer to an *Info*
//! record plus a 2-bit state (`CLEAN`, `IFLAG`, `DFLAG`, `MARK`). An update
//! first *flags* the internal node(s) it is about to modify by installing an
//! Info record describing the operation; any thread that encounters a
//! non-`CLEAN` update word **helps** complete the described operation before
//! proceeding. This helping is precisely the extra synchronization the paper
//! calls out when comparing `ellen` against ASCY4-style designs
//! (§5/Figure 7: more than three atomic operations per update versus two for
//! `natarajan` and BST-TK).

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::marked::MarkedPtr;
use crate::ordered::{impl_ordered_map, walk_tree, RangeWalk, TreeNode};
use crate::stats;

/// `update`-word states.
mod state {
    pub const CLEAN: usize = 0;
    pub const IFLAG: usize = 1;
    pub const DFLAG: usize = 2;
    pub const MARK: usize = 3;
}

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    update: MarkedPtr<Info>,
    /// Null for leaves.
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

/// Operation descriptor; one layout serves both insertions (`IInfo`) and
/// deletions (`DInfo`).
#[repr(C)]
struct Info {
    gp: *mut Node,
    p: *mut Node,
    l: *mut Node,
    new_internal: *mut Node,
    pupdate_ptr: *mut Info,
    pupdate_state: usize,
}

fn new_leaf(key: u64, value: u64) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        update: MarkedPtr::null(),
        left: AtomicPtr::new(std::ptr::null_mut()),
        right: AtomicPtr::new(std::ptr::null_mut()),
    })
}

fn new_internal(key: u64, left: *mut Node, right: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(0),
        update: MarkedPtr::null(),
        left: AtomicPtr::new(left),
        right: AtomicPtr::new(right),
    })
}

/// Result of the seek phase.
struct Seek {
    gp: *mut Node,
    p: *mut Node,
    l: *mut Node,
    gpupdate: (*mut Info, usize),
    pupdate: (*mut Info, usize),
}

/// The Ellen et al. lock-free external BST.
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::bst::EllenBst;
///
/// let t = EllenBst::new();
/// assert!(t.insert(14, 140));
/// assert_eq!(t.remove(14), Some(140));
/// ```
pub struct EllenBst {
    root: *mut Node,
}

// SAFETY: all shared node fields are atomics; structural changes go through
// the flag/mark/help protocol; unlinked nodes and superseded Info records are
// retired through SSMEM while readers hold guards.
unsafe impl Send for EllenBst {}
// SAFETY: see above.
unsafe impl Sync for EllenBst {}

impl EllenBst {
    /// Creates an empty tree.
    pub fn new() -> Self {
        let min_leaf = new_leaf(0, 0);
        let max_leaf = new_leaf(u64::MAX, 0);
        let root = new_internal(u64::MAX, min_leaf, max_leaf);
        Self { root }
    }

    #[inline]
    fn is_leaf(node: *mut Node) -> bool {
        // SAFETY: caller guarantees the node is protected by a guard.
        unsafe { (*node).left.load(Ordering::Acquire).is_null() }
    }

    /// Seek phase: descends to the leaf for `key`, reading each internal
    /// node's `update` word *before* its child pointer (the order the
    /// algorithm's correctness argument relies on).
    ///
    /// Caller must hold an SSMEM guard.
    fn seek(&self, key: u64) -> Seek {
        let mut traversed = 0u64;
        // SAFETY: the guard protects every traversed node.
        unsafe {
            let mut gp = std::ptr::null_mut();
            let mut gpupdate = (std::ptr::null_mut(), state::CLEAN);
            let mut p = self.root;
            let mut pupdate = (*p).update.load(Ordering::Acquire);
            let mut l = (*p).left.load(Ordering::Acquire);
            while !Self::is_leaf(l) {
                traversed += 1;
                gp = p;
                gpupdate = pupdate;
                p = l;
                pupdate = (*p).update.load(Ordering::Acquire);
                l = if key < (*p).key {
                    (*p).left.load(Ordering::Acquire)
                } else {
                    (*p).right.load(Ordering::Acquire)
                };
            }
            stats::record_traversal(traversed);
            Seek { gp, p, l, gpupdate, pupdate }
        }
    }

    /// CAS one of `parent`'s child pointers from `old` to `new`, choosing the
    /// side by key comparison.
    ///
    /// # Safety
    ///
    /// All pointers must be protected by the current guard.
    unsafe fn cas_child(parent: *mut Node, old: *mut Node, new: *mut Node) -> bool {
        // SAFETY: per contract. The side is determined by where `old`
        // currently sits: `old.key < parent.key` iff it is the left child
        // (external-tree routing invariant).
        unsafe {
            let side = if (*old).key < (*parent).key {
                &(*parent).left
            } else {
                &(*parent).right
            };
            let ok = side
                .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
            stats::record_atomic(ok);
            ok
        }
    }

    /// CAS a node's update word; on success, retires the Info record it
    /// replaced (if it was a different record).
    ///
    /// # Safety
    ///
    /// `node` must be protected by the current guard; `new_ptr` must be a
    /// fully initialized Info record (or the same record as `old_ptr`).
    unsafe fn cas_update(
        node: *mut Node,
        old_ptr: *mut Info,
        old_state: usize,
        new_ptr: *mut Info,
        new_state: usize,
    ) -> bool {
        // SAFETY: per contract; a superseded Info record is unreachable from
        // any node's update word once replaced, so retiring it is safe.
        unsafe {
            let ok = (*node)
                .update
                .compare_exchange(old_ptr, old_state, new_ptr, new_state, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
            stats::record_atomic(ok);
            if ok && !old_ptr.is_null() && old_ptr != new_ptr {
                ssmem::retire(old_ptr);
            }
            ok
        }
    }

    /// Helps whatever operation is described by `(info, state)`.
    ///
    /// # Safety
    ///
    /// Caller must hold a guard; the pair must have been read from a node's
    /// update word under that guard.
    unsafe fn help(&self, info: *mut Info, st: usize) {
        if info.is_null() {
            return;
        }
        // SAFETY: per contract.
        unsafe {
            match st {
                state::IFLAG => self.help_insert(info),
                state::MARK => self.help_marked(info),
                state::DFLAG => {
                    let _ = self.help_delete(info);
                }
                _ => {}
            }
        }
    }

    /// Completes an insertion described by `info` (IFLAG on `info.p`).
    ///
    /// # Safety
    ///
    /// Caller must hold a guard.
    unsafe fn help_insert(&self, info: *mut Info) {
        // SAFETY: per contract; the Info record keeps its nodes reachable for
        // helpers, and all of them are guarded.
        unsafe {
            let op = &*info;
            Self::cas_child(op.p, op.l, op.new_internal);
            Self::cas_update(op.p, info, state::IFLAG, info, state::CLEAN);
        }
    }

    /// Tries to complete a deletion described by `info` (DFLAG on `info.gp`).
    /// Returns `false` if the deletion had to back off (the parent could not
    /// be marked).
    ///
    /// # Safety
    ///
    /// Caller must hold a guard.
    unsafe fn help_delete(&self, info: *mut Info) -> bool {
        // SAFETY: per contract.
        unsafe {
            let op = &*info;
            let marked = Self::cas_update(op.p, op.pupdate_ptr, op.pupdate_state, info, state::MARK);
            let (cur_ptr, cur_state) = (*op.p).update.load(Ordering::Acquire);
            if marked || (cur_ptr == info && cur_state == state::MARK) {
                self.help_marked(info);
                true
            } else {
                // Help whatever got in the way, then back off the DFLAG.
                self.help(cur_ptr, cur_state);
                Self::cas_update(op.gp, info, state::DFLAG, info, state::CLEAN);
                false
            }
        }
    }

    /// Physically removes the parent/leaf pair of a marked deletion.
    ///
    /// # Safety
    ///
    /// Caller must hold a guard.
    unsafe fn help_marked(&self, info: *mut Info) {
        // SAFETY: per contract; only the thread whose child CAS succeeds
        // retires the unlinked pair.
        unsafe {
            let op = &*info;
            let right = (*op.p).right.load(Ordering::Acquire);
            let other = if right == op.l {
                (*op.p).left.load(Ordering::Acquire)
            } else {
                right
            };
            if Self::cas_child(op.gp, op.p, other) {
                ssmem::retire(op.p);
                ssmem::retire(op.l);
            }
            Self::cas_update(op.gp, info, state::DFLAG, info, state::CLEAN);
        }
    }
}

impl ConcurrentMap for EllenBst {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        stats::record_operation();
        let mut traversed = 0u64;
        // SAFETY: the guard protects the traversal; searches never help
        // (they are oblivious to update words).
        unsafe {
            let mut l = (*self.root).left.load(Ordering::Acquire);
            while !Self::is_leaf(l) {
                traversed += 1;
                l = if key < (*l).key {
                    (*l).left.load(Ordering::Acquire)
                } else {
                    (*l).right.load(Ordering::Acquire)
                };
            }
            stats::record_traversal(traversed);
            if (*l).key == key {
                Some((*l).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let s = self.seek(key);
            // SAFETY: guard protects all nodes reached by seek; new nodes and
            // the Info record are fully initialized before being published.
            unsafe {
                if (*s.l).key == key {
                    stats::record_operation();
                    return false;
                }
                if s.pupdate.1 != state::CLEAN {
                    self.help(s.pupdate.0, s.pupdate.1);
                    stats::record_restart();
                    continue;
                }
                let leaf = new_leaf(key, value);
                let router_key = key.max((*s.l).key);
                let internal = if key < (*s.l).key {
                    new_internal(router_key, leaf, s.l)
                } else {
                    new_internal(router_key, s.l, leaf)
                };
                let op = ssmem::alloc(Info {
                    gp: std::ptr::null_mut(),
                    p: s.p,
                    l: s.l,
                    new_internal: internal,
                    pupdate_ptr: std::ptr::null_mut(),
                    pupdate_state: state::CLEAN,
                });
                if Self::cas_update(s.p, s.pupdate.0, s.pupdate.1, op, state::IFLAG) {
                    self.help_insert(op);
                    stats::record_operation();
                    return true;
                }
                // Lost the race: free the unpublished nodes and help.
                ssmem::dealloc_immediate(op);
                ssmem::dealloc_immediate(internal);
                ssmem::dealloc_immediate(leaf);
                let (cur_ptr, cur_state) = (*s.p).update.load(Ordering::Acquire);
                self.help(cur_ptr, cur_state);
                stats::record_restart();
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let s = self.seek(key);
            // SAFETY: guard protects all nodes reached by seek.
            unsafe {
                if (*s.l).key != key {
                    stats::record_operation();
                    return None;
                }
                if s.gpupdate.1 != state::CLEAN {
                    self.help(s.gpupdate.0, s.gpupdate.1);
                    stats::record_restart();
                    continue;
                }
                if s.pupdate.1 != state::CLEAN {
                    self.help(s.pupdate.0, s.pupdate.1);
                    stats::record_restart();
                    continue;
                }
                let value = (*s.l).value.load(Ordering::Acquire);
                let op = ssmem::alloc(Info {
                    gp: s.gp,
                    p: s.p,
                    l: s.l,
                    new_internal: std::ptr::null_mut(),
                    pupdate_ptr: s.pupdate.0,
                    pupdate_state: s.pupdate.1,
                });
                if Self::cas_update(s.gp, s.gpupdate.0, s.gpupdate.1, op, state::DFLAG) {
                    if self.help_delete(op) {
                        stats::record_operation();
                        return Some(value);
                    }
                    stats::record_restart();
                } else {
                    ssmem::dealloc_immediate(op);
                    let (cur_ptr, cur_state) = (*s.gp).update.load(Ordering::Acquire);
                    self.help(cur_ptr, cur_state);
                    stats::record_restart();
                }
            }
        }
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        let mut stack = Vec::new();
        // SAFETY: guard protects the traversal.
        unsafe {
            stack.push(self.root);
            while let Some(n) = stack.pop() {
                if Self::is_leaf(n) {
                    let k = (*n).key;
                    if k != 0 && k != u64::MAX {
                        count += 1;
                    }
                } else {
                    stack.push((*n).left.load(Ordering::Acquire));
                    stack.push((*n).right.load(Ordering::Acquire));
                }
            }
        }
        count
    }
}

impl TreeNode for Node {
    fn tree_key(&self) -> u64 {
        self.key
    }

    fn tree_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn tree_children(&self) -> (*mut Self, *mut Self) {
        (self.left.load(Ordering::Acquire), self.right.load(Ordering::Acquire))
    }
}

impl RangeWalk for EllenBst {
    /// In-order leaf walk that, like `search`, ignores the `update` words
    /// entirely: a leaf is present until the deletion's child-CAS unlinks
    /// it, which is within the scan-semantics tolerance.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every traversed node.
        unsafe { walk_tree(self.root, lo, visit) }
    }
}

impl_ordered_map!(EllenBst);

impl Default for EllenBst {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for EllenBst {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; free every reachable node and its Info
        // record (each record is referenced by at most one reachable node's
        // update word at this point — superseded records were retired when
        // replaced, and the p-side MARK reference always belongs to an
        // already-unlinked node).
        unsafe {
            let mut stack = vec![self.root];
            while let Some(n) = stack.pop() {
                let l = (*n).left.load(Ordering::Relaxed);
                let r = (*n).right.load(Ordering::Relaxed);
                if !l.is_null() {
                    stack.push(l);
                    stack.push(r);
                }
                let (info, _) = (*n).update.load(Ordering::Relaxed);
                if !info.is_null() {
                    ssmem::dealloc_immediate(info);
                }
                ssmem::dealloc_immediate(n);
            }
        }
    }
}

impl std::fmt::Debug for EllenBst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EllenBst").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let t = EllenBst::new();
        for k in [8u64, 3, 10, 1, 6, 14, 4, 7, 13] {
            assert!(t.insert(k, k * 2));
        }
        assert!(!t.insert(6, 0));
        assert_eq!(t.size(), 9);
        for k in [8u64, 3, 10, 1, 6, 14, 4, 7, 13] {
            assert_eq!(t.search(k), Some(k * 2), "key {k}");
        }
        assert_eq!(t.remove(3), Some(6));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.search(1), Some(2));
        assert_eq!(t.search(4), Some(8));
        assert_eq!(t.size(), 8);
    }

    #[test]
    fn drain_and_refill() {
        let t = EllenBst::new();
        for round in 0..3u64 {
            for k in 1..=100u64 {
                assert!(t.insert(k, k + round), "round {round} insert {k}");
            }
            for k in (1..=100u64).rev() {
                assert_eq!(t.remove(k), Some(k + round), "round {round} remove {k}");
            }
            assert_eq!(t.size(), 0);
        }
    }
}
