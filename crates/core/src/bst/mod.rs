//! Concurrent binary search trees (Table 1, "bst" rows) and the paper's new
//! **BST-TK** (§6.2).
//!
//! | Name | Type | Algorithm |
//! |------|------|-----------|
//! | [`AsyncBstInternal`] | seq | Sequential internal BST (asynchronized baseline). |
//! | [`AsyncBstExternal`] | seq | Sequential external BST (asynchronized baseline). |
//! | [`EllenBst`] | lf | Ellen/Fatourou/Ruppert/van Breugel lock-free external tree (Info-record helping). |
//! | [`NatarajanBst`] | lf | Natarajan–Mittal edge-marking external tree (minimal atomics, helping only on conflict). |
//! | [`BstTk`] | lb | The paper's BST-Ticket: external tree with versioned ticket locks, one lock per insert, two per remove. |
//!
//! The remaining trees evaluated by the paper (`bronson`, `drachsler`,
//! `howley`) are not reproduced; DESIGN.md and EXPERIMENTS.md list this as a
//! known gap and Figure 7's bench sweeps the implemented subset.
//!
//! All trees are *external* (data in leaves) except the internal sequential
//! baseline; keys are routed with the rule `key < node.key → left`.

mod bst_tk;
mod ellen;
mod natarajan;
mod seq;

pub use bst_tk::BstTk;
pub use ellen::EllenBst;
pub use natarajan::NatarajanBst;
pub use seq::{AsyncBstExternal, AsyncBstInternal};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn bst_tk_full_suite() {
        testing::full_suite(BstTk::new);
    }

    #[test]
    fn ellen_full_suite() {
        testing::full_suite(EllenBst::new);
    }

    #[test]
    fn natarajan_full_suite() {
        testing::full_suite(NatarajanBst::new);
    }

    #[test]
    fn all_bsts_ordered_model_check() {
        testing::ordered_model_check(BstTk::new, 1_500);
        testing::ordered_model_check(EllenBst::new, 1_500);
        testing::ordered_model_check(NatarajanBst::new, 1_500);
        testing::ordered_model_check(AsyncBstInternal::new, 1_500);
        testing::ordered_model_check(AsyncBstExternal::new, 1_500);
    }

    #[test]
    fn async_internal_sequential_suite() {
        testing::sequential_suite(AsyncBstInternal::new);
        testing::model_check(AsyncBstInternal::new, 3_000);
    }

    #[test]
    fn async_external_sequential_suite() {
        testing::sequential_suite(AsyncBstExternal::new);
        testing::model_check(AsyncBstExternal::new, 3_000);
    }
}
