//! The Natarajan–Mittal lock-free external BST (PPoPP 2014), the
//! best-performing BST in the paper's evaluation.
//!
//! The distinguishing idea is to mark **edges instead of nodes**: a deletion
//! first *flags* the edge leading to the victim leaf (one CAS — the
//! linearization point), then *tags* the edge to the sibling so the parent
//! can no longer change, and finally swings the grandparent edge to the
//! sibling (one more CAS). Successful updates therefore need roughly two
//! atomic operations — the ASCY4 property the paper highlights (§5,
//! Figure 7) — and searches are plain traversals that ignore the bits
//! entirely (ASCY1). Threads help only when they actually conflict with a
//! pending deletion (their own CAS fails on a flagged/tagged edge).
//!
//! This implementation keeps the flag/tag edge protocol but tracks the
//! concrete grandparent instead of Natarajan's ancestor/successor pair: when
//! the grandparent edge changes under a cleanup, the operation simply
//! re-seeks (see DESIGN.md).

use std::sync::atomic::{AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::marked::{tag, MarkedPtr};
use crate::ordered::{impl_ordered_map, RangeWalk};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    /// Null for leaves. The two tag bits carry FLAG (edge to a leaf being
    /// deleted) and MARK ("tag": the edge may no longer change).
    left: MarkedPtr<Node>,
    right: MarkedPtr<Node>,
}

/// Edge-state bits (on top of [`crate::marked::tag`]).
const FLAG: usize = tag::FLAG;
const TAG: usize = tag::MARK;

fn new_leaf(key: u64, value: u64) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        left: MarkedPtr::null(),
        right: MarkedPtr::null(),
    })
}

fn new_router(key: u64, left: *mut Node, right: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(0),
        left: MarkedPtr::new(left, tag::CLEAN),
        right: MarkedPtr::new(right, tag::CLEAN),
    })
}

/// Which child edge of a router leads towards `key`.
#[inline]
fn edge_for(node: &Node, key: u64) -> &MarkedPtr<Node> {
    if key < node.key {
        &node.left
    } else {
        &node.right
    }
}


/// Seek record: grandparent, parent and leaf for a key.
struct Seek {
    gp: *mut Node,
    p: *mut Node,
    l: *mut Node,
}

/// The Natarajan–Mittal lock-free external BST.
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::bst::NatarajanBst;
///
/// let t = NatarajanBst::new();
/// assert!(t.insert(33, 330));
/// assert_eq!(t.search(33), Some(330));
/// assert_eq!(t.remove(33), Some(330));
/// ```
pub struct NatarajanBst {
    root: *mut Node,
}

// SAFETY: all shared fields are atomics; structural changes go through the
// edge flag/tag protocol, and a parent/leaf pair is retired only by the
// thread whose grandparent-swing CAS unlinked it, while traversals hold
// SSMEM guards.
unsafe impl Send for NatarajanBst {}
// SAFETY: see above.
unsafe impl Sync for NatarajanBst {}

impl NatarajanBst {
    /// Creates an empty tree.
    pub fn new() -> Self {
        // root(MAX) -> {leaf(0), leaf(MAX)}: the key-0 sentinel stays the
        // leftmost leaf forever, so a real leaf can never become a direct
        // child of the root and every removable leaf has a grandparent.
        let min_leaf = new_leaf(0, 0);
        let max_leaf = new_leaf(u64::MAX, 0);
        let root = new_router(u64::MAX, min_leaf, max_leaf);
        Self { root }
    }

    #[inline]
    fn is_leaf(node: *mut Node) -> bool {
        // SAFETY: caller guarantees the node is guarded.
        unsafe { (*node).left.load(Ordering::Acquire).0.is_null() }
    }

    /// Descends to the leaf for `key`. Plain traversal; flags/tags are
    /// ignored (stripped by the marked-pointer load).
    ///
    /// Caller must hold an SSMEM guard.
    fn seek(&self, key: u64) -> Seek {
        let mut traversed = 0u64;
        // SAFETY: the guard protects every traversed node.
        unsafe {
            let mut gp = std::ptr::null_mut();
            let mut p = self.root;
            let mut l = (*p).left.load(Ordering::Acquire).0;
            while !Self::is_leaf(l) {
                traversed += 1;
                gp = p;
                p = l;
                l = edge_for(&*p, key).load(Ordering::Acquire).0;
            }
            stats::record_traversal(traversed);
            Seek { gp, p, l }
        }
    }

    /// Completes a pending deletion at `p` (one of whose edges is flagged),
    /// swinging `gp`'s edge from `p` to the surviving child. Returns `true`
    /// if this thread performed the swing (and therefore retired the
    /// victim pair).
    ///
    /// # Safety
    ///
    /// `gp` and `p` must be guarded; `gp` must have been observed as `p`'s
    /// parent.
    unsafe fn help_cleanup(&self, gp: *mut Node, p: *mut Node) -> bool {
        // SAFETY: per contract.
        unsafe {
            let (lptr, ltag) = (*p).left.load(Ordering::Acquire);
            let (rptr, rtag) = (*p).right.load(Ordering::Acquire);
            // Identify the flagged (victim) edge.
            let (victim, victim_edge_is_left) = if ltag & FLAG != 0 {
                (lptr, true)
            } else if rtag & FLAG != 0 {
                (rptr, false)
            } else {
                // Nothing to clean (the deletion already completed).
                return false;
            };
            // Tag the sibling edge so it can no longer change.
            let sibling_edge = if victim_edge_is_left { &(*p).right } else { &(*p).left };
            loop {
                let (sp, st) = sibling_edge.load(Ordering::Acquire);
                if st & TAG != 0 {
                    break;
                }
                let ok = sibling_edge
                    .compare_exchange(sp, st, sp, st | TAG, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                stats::record_atomic(ok);
                if ok {
                    break;
                }
            }
            // Read the (now frozen) sibling edge and swing the grandparent
            // edge, preserving a FLAG that may sit on the sibling edge (it
            // belongs to a pending deletion of the sibling leaf).
            let (sibling, stag) = sibling_edge.load(Ordering::Acquire);
            let gp_edge = if (*p).key < (*gp).key { &(*gp).left } else { &(*gp).right };
            let ok = gp_edge
                .compare_exchange(
                    p,
                    tag::CLEAN,
                    sibling,
                    stag & FLAG,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok();
            stats::record_atomic(ok);
            if ok {
                // p and the victim leaf are now unreachable.
                ssmem::retire(p);
                ssmem::retire(victim);
            }
            ok
        }
    }
}

impl ConcurrentMap for NatarajanBst {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        stats::record_operation();
        let mut traversed = 0u64;
        // SAFETY: the guard protects the traversal; searches perform no
        // stores and never help (ASCY1).
        unsafe {
            let mut l = (*self.root).left.load(Ordering::Acquire).0;
            while !Self::is_leaf(l) {
                traversed += 1;
                l = edge_for(&*l, key).load(Ordering::Acquire).0;
            }
            stats::record_traversal(traversed);
            if (*l).key == key {
                Some((*l).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let mut new_leaf_ptr: *mut Node = std::ptr::null_mut();
        let mut router_ptr: *mut Node = std::ptr::null_mut();
        loop {
            let s = self.seek(key);
            // SAFETY: guard protects the seek record; new nodes are fully
            // initialized before the publishing CAS.
            unsafe {
                if (*s.l).key == key {
                    // ASCY3: read-only failure.
                    if !new_leaf_ptr.is_null() {
                        ssmem::dealloc_immediate(new_leaf_ptr);
                        ssmem::dealloc_immediate(router_ptr);
                    }
                    stats::record_operation();
                    return false;
                }
                if new_leaf_ptr.is_null() {
                    new_leaf_ptr = new_leaf(key, value);
                    router_ptr = new_router(0, std::ptr::null_mut(), std::ptr::null_mut());
                }
                // (Re)wire the router for the current leaf.
                let router_key = key.max((*s.l).key);
                let router = &mut *router_ptr;
                router.key = router_key;
                // Relaxed: the router subtree is private until the edge CAS
                // below publishes it.
                if key < (*s.l).key {
                    router.left.store(new_leaf_ptr, tag::CLEAN, Ordering::Relaxed);
                    router.right.store(s.l, tag::CLEAN, Ordering::Relaxed);
                } else {
                    router.left.store(s.l, tag::CLEAN, Ordering::Relaxed);
                    router.right.store(new_leaf_ptr, tag::CLEAN, Ordering::Relaxed);
                }
                let edge = edge_for(&*s.p, key);
                let ok = edge
                    .compare_exchange(
                        s.l,
                        tag::CLEAN,
                        router_ptr,
                        tag::CLEAN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(ok);
                if ok {
                    stats::record_operation();
                    return true;
                }
                // The edge changed: if it carries a flag or tag, help the
                // pending deletion at the parent before retrying.
                let (_, t) = edge.load(Ordering::Acquire);
                if t != tag::CLEAN && !s.gp.is_null() {
                    self.help_cleanup(s.gp, s.p);
                }
                stats::record_restart();
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        // Injection phase: flag the edge to the victim leaf.
        let (victim, value) = loop {
            let s = self.seek(key);
            // SAFETY: guard protects the seek record.
            unsafe {
                if (*s.l).key != key {
                    // ASCY3: read-only failure.
                    stats::record_operation();
                    return None;
                }
                let value = (*s.l).value.load(Ordering::Acquire);
                let edge = edge_for(&*s.p, key);
                let ok = edge
                    .compare_exchange(
                        s.l,
                        tag::CLEAN,
                        s.l,
                        FLAG,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(ok);
                if ok {
                    // Linearization point: the leaf is logically deleted.
                    // Cleanup phase below.
                    if s.gp.is_null() {
                        // Cannot happen for real keys (the key-0 sentinel
                        // keeps real leaves below depth 1), but be defensive.
                        stats::record_operation();
                        return Some(value);
                    }
                    self.help_cleanup(s.gp, s.p);
                    break ((s.l, s.p), value);
                }
                // Failed to flag: either the leaf changed or a deletion is
                // pending on this parent; help and retry.
                let (nl, t) = edge.load(Ordering::Acquire);
                if t != tag::CLEAN && !s.gp.is_null() {
                    self.help_cleanup(s.gp, s.p);
                } else if nl == s.l && t == tag::CLEAN {
                    // Spurious failure; retry.
                }
                stats::record_restart();
            }
        };
        // Cleanup phase: make sure the flagged leaf is physically removed
        // before returning (either by us in help_cleanup above or by a
        // helper).
        let (leaf, _parent_at_flag) = victim;
        loop {
            let s = self.seek(key);
            if s.l != leaf {
                // The leaf is no longer reachable: some thread completed the
                // cleanup (and retired the pair).
                break;
            }
            // SAFETY: guard protects the seek record.
            unsafe {
                if s.gp.is_null() {
                    break;
                }
                self.help_cleanup(s.gp, s.p);
            }
            stats::record_restart();
        }
        stats::record_operation();
        Some(value)
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        let mut stack = Vec::new();
        // SAFETY: guard protects the traversal.
        unsafe {
            stack.push(self.root);
            while let Some(n) = stack.pop() {
                if Self::is_leaf(n) {
                    let k = (*n).key;
                    if k != 0 && k != u64::MAX {
                        count += 1;
                    }
                } else {
                    // Skip subtrees hanging off flagged edges? No: a flagged
                    // leaf is still logically... it was logically deleted at
                    // flag time, so do not count leaves behind flagged edges.
                    let (l, lt) = (*n).left.load(Ordering::Acquire);
                    let (r, rt) = (*n).right.load(Ordering::Acquire);
                    if lt & FLAG == 0 || !Self::is_leaf(l) {
                        stack.push(l);
                    }
                    if rt & FLAG == 0 || !Self::is_leaf(r) {
                        stack.push(r);
                    }
                }
            }
        }
        count
    }
}

impl RangeWalk for NatarajanBst {
    /// In-order leaf walk with the same liveness rule as `size`: a leaf
    /// hanging off a *flagged* edge was logically deleted at flag time, so
    /// its subtree is pruned. Store-free, like the point search; the shared
    /// tree walker is not reused here because liveness lives on the edges,
    /// not the nodes.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        let mut traversed = 0u64;
        let mut pending: Vec<*mut Node> = Vec::new();
        let mut curr = self.root;
        // SAFETY: the guard protects every traversed node.
        unsafe {
            'walk: loop {
                // Descend towards the leftmost in-range leaf, stacking the
                // right subtrees; skip subtrees behind flagged leaf edges.
                loop {
                    traversed += 1;
                    if Self::is_leaf(curr) {
                        let key = (*curr).key;
                        if key >= lo
                            && key != 0
                            && key != u64::MAX
                            && !visit(key, (*curr).value.load(Ordering::Acquire))
                        {
                            break 'walk;
                        }
                        break;
                    }
                    let (left, lt) = (*curr).left.load(Ordering::Acquire);
                    let (right, rt) = (*curr).right.load(Ordering::Acquire);
                    let left_dead = lt & FLAG != 0 && Self::is_leaf(left);
                    let right_dead = rt & FLAG != 0 && Self::is_leaf(right);
                    if lo < (*curr).key {
                        if !right_dead {
                            pending.push(right);
                        }
                        if left_dead {
                            break;
                        }
                        curr = left;
                    } else {
                        // The whole left subtree is < curr.key <= lo.
                        if right_dead {
                            break;
                        }
                        curr = right;
                    }
                }
                match pending.pop() {
                    Some(next) => curr = next,
                    None => break,
                }
            }
        }
        stats::record_traversal(traversed);
    }
}

impl_ordered_map!(NatarajanBst);

impl Default for NatarajanBst {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for NatarajanBst {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; every reachable node freed once.
        unsafe {
            let mut stack = vec![self.root];
            while let Some(n) = stack.pop() {
                let l = (*n).left.load(Ordering::Relaxed).0;
                let r = (*n).right.load(Ordering::Relaxed).0;
                if !l.is_null() {
                    stack.push(l);
                    stack.push(r);
                }
                ssmem::dealloc_immediate(n);
            }
        }
    }
}

impl std::fmt::Debug for NatarajanBst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NatarajanBst").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let t = NatarajanBst::new();
        for k in [16u64, 8, 24, 4, 12, 20, 28] {
            assert!(t.insert(k, k + 100));
        }
        assert!(!t.insert(12, 0));
        assert_eq!(t.size(), 7);
        for k in [16u64, 8, 24, 4, 12, 20, 28] {
            assert_eq!(t.search(k), Some(k + 100), "key {k}");
        }
        assert_eq!(t.remove(8), Some(108));
        assert_eq!(t.remove(8), None);
        assert_eq!(t.search(4), Some(104));
        assert_eq!(t.search(12), Some(112));
        assert_eq!(t.size(), 6);
    }

    #[test]
    fn drain_and_refill() {
        let t = NatarajanBst::new();
        for round in 0..3u64 {
            for k in 1..=128u64 {
                assert!(t.insert(k, k * 3 + round), "round {round} insert {k}");
            }
            assert_eq!(t.size(), 128);
            for k in 1..=128u64 {
                assert_eq!(t.remove(k), Some(k * 3 + round), "round {round} remove {k}");
            }
            assert_eq!(t.size(), 0);
        }
    }
}
