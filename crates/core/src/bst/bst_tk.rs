//! BST-TK (BST Ticket) — the paper's new lock-based external tree (§6.2).
//!
//! BST-TK reduces the number of cache-line transfers by acquiring fewer
//! locks than existing lock-based BSTs: **one** lock for a successful
//! insertion and **two** for a successful removal. Every internal (router)
//! node carries a [`TreeLock`]: a pair of versioned ticket locks, one per
//! child edge. The parse phase records the lock versions it observed; the
//! modification phase then *tries to acquire that specific version*
//! (consolidating steps 3+4 and 6+7 of Figure 10 — lock acquisition and
//! validation become a single CAS). A failed acquisition means a concurrent
//! update changed the node, and the operation restarts its parse.
//!
//! The update flow (Figure 10 of the paper):
//!
//! ```text
//! 1. parse()                      // record version numbers
//! 2. if (!can_update()) return false   // ASCY3
//! 3. lock()                       // 1 node for insert, 2 for remove
//! 4. if (!validate_version()) goto 1   // folded into try_lock-at-version
//! 5. apply_update()
//! 6. increase_version()
//! 7. unlock()                     // folded into unlock (version bump)
//! ```

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;
use ascylib_sync::versioned::{Side, TreeLock, TreeLockSnapshot};

use crate::api::{debug_check_key, ConcurrentMap};
use crate::ordered::{impl_ordered_map, walk_tree, RangeWalk, TreeNode};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    /// Versioned ticket-lock pair (left/right edges); unused for leaves.
    lock: TreeLock,
    /// Null for leaves.
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

fn new_leaf(key: u64, value: u64) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        lock: TreeLock::new(),
        left: AtomicPtr::new(std::ptr::null_mut()),
        right: AtomicPtr::new(std::ptr::null_mut()),
    })
}

fn new_router(key: u64, left: *mut Node, right: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(0),
        lock: TreeLock::new(),
        left: AtomicPtr::new(left),
        right: AtomicPtr::new(right),
    })
}

/// One step of the parse phase: a router node, the lock snapshot taken when
/// its child pointer was read, and the direction taken.
#[derive(Clone, Copy)]
struct Step {
    node: *mut Node,
    snapshot: TreeLockSnapshot,
    side: Side,
}

/// The BST-Ticket external tree (lock-based).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::bst::BstTk;
///
/// let t = BstTk::new();
/// assert!(t.insert(42, 420));
/// assert_eq!(t.search(42), Some(420));
/// assert_eq!(t.remove(42), Some(420));
/// ```
pub struct BstTk {
    /// Sentinel router above the tree; its left child is the real tree.
    root: *mut Node,
}

// SAFETY: shared node fields are atomics; structural changes happen only
// under versioned ticket locks acquired at the version observed by the
// parse; removed nodes are retired through SSMEM while readers hold guards.
unsafe impl Send for BstTk {}
// SAFETY: see above.
unsafe impl Sync for BstTk {}

impl BstTk {
    /// Creates an empty tree.
    pub fn new() -> Self {
        // root (key MAX) -> left: inner (key MAX) -> {leaf(0), leaf(MAX)}
        // so that every real leaf always has an internal parent *and*
        // grandparent.
        let min_leaf = new_leaf(0, 0);
        let max_leaf = new_leaf(u64::MAX, 0);
        let inner = new_router(u64::MAX, min_leaf, max_leaf);
        let far_right = new_leaf(u64::MAX, 0);
        let root = new_router(u64::MAX, inner, far_right);
        Self { root }
    }

    #[inline]
    fn child(node: *mut Node, side: Side) -> *mut Node {
        // SAFETY: caller guarantees `node` is a protected router node.
        unsafe {
            match side {
                Side::Left => (*node).left.load(Ordering::Acquire),
                Side::Right => (*node).right.load(Ordering::Acquire),
            }
        }
    }

    #[inline]
    fn store_child(node: *mut Node, side: Side, value: *mut Node) {
        // SAFETY: caller holds the corresponding edge lock.
        unsafe {
            match side {
                Side::Left => (*node).left.store(value, Ordering::Release),
                Side::Right => (*node).right.store(value, Ordering::Release),
            }
        }
        stats::record_store();
    }

    /// Optimistic parse: descends to the leaf for `key`, recording the
    /// grandparent and parent steps (node, lock snapshot, direction).
    ///
    /// Caller must hold an SSMEM guard.
    fn parse(&self, key: u64) -> (Step, Step, *mut Node) {
        let mut traversed = 0u64;
        // SAFETY: the guard protects every traversed node.
        unsafe {
            let mut gp = Step {
                node: self.root,
                snapshot: (*self.root).lock.snapshot(),
                side: Side::Left,
            };
            let mut p = gp;
            let mut curr = Self::child(p.node, p.side);
            while !(*curr).left.load(Ordering::Acquire).is_null() {
                traversed += 1;
                let side = if key < (*curr).key { Side::Left } else { Side::Right };
                let snapshot = (*curr).lock.snapshot();
                gp = p;
                p = Step { node: curr, snapshot, side };
                curr = Self::child(curr, side);
            }
            stats::record_traversal(traversed);
            (gp, p, curr)
        }
    }
}

impl ConcurrentMap for BstTk {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        stats::record_operation();
        let mut traversed = 0u64;
        // SAFETY: guard protects the traversal; no stores, no retries
        // (ASCY1).
        unsafe {
            let mut curr = (*self.root).left.load(Ordering::Acquire);
            while !(*curr).left.load(Ordering::Acquire).is_null() {
                traversed += 1;
                curr = if key < (*curr).key {
                    (*curr).left.load(Ordering::Acquire)
                } else {
                    (*curr).right.load(Ordering::Acquire)
                };
            }
            stats::record_traversal(traversed);
            if (*curr).key == key {
                Some((*curr).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let (_gp, p, leaf) = self.parse(key);
            // SAFETY: guard protects the nodes; the edge is modified only
            // after acquiring its versioned lock at the observed version.
            unsafe {
                if (*leaf).key == key {
                    // ASCY3: fail without a single store.
                    stats::record_operation();
                    return false;
                }
                // Step 3+4: acquire the parsed version of the parent edge.
                let locked = (*p.node).lock.try_lock(p.side, &p.snapshot);
                stats::record_atomic(locked);
                if !locked {
                    stats::record_restart();
                    continue;
                }
                // Step 5: splice in a new router with the old leaf and the
                // new leaf as children.
                let new = new_leaf(key, value);
                let router_key = key.max((*leaf).key);
                let router = if key < (*leaf).key {
                    new_router(router_key, new, leaf)
                } else {
                    new_router(router_key, leaf, new)
                };
                Self::store_child(p.node, p.side, router);
                // Steps 6+7: unlock bumps the edge version.
                (*p.node).lock.unlock(p.side);
                stats::record_operation();
                return true;
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let (gp, p, leaf) = self.parse(key);
            // SAFETY: guard protects the nodes; both the grandparent edge and
            // the parent's two edges are locked at their parsed versions
            // before the splice; victims are retired after being unlinked.
            unsafe {
                if (*leaf).key != key {
                    // ASCY3: fail without a single store.
                    stats::record_operation();
                    return None;
                }
                // Lock the grandparent edge leading to the parent.
                let gp_locked = (*gp.node).lock.try_lock(gp.side, &gp.snapshot);
                stats::record_atomic(gp_locked);
                if !gp_locked {
                    stats::record_restart();
                    continue;
                }
                // Lock both edges of the parent (it is being removed).
                let p_locked = (*p.node).lock.try_lock_both(&p.snapshot);
                stats::record_atomic(p_locked);
                if !p_locked {
                    // Undo the grandparent acquisition without bumping its
                    // version: nothing changed.
                    (*gp.node).lock.revert(gp.side);
                    stats::record_restart();
                    continue;
                }
                let value = (*leaf).value.load(Ordering::Acquire);
                let sibling = match p.side {
                    Side::Left => (*p.node).right.load(Ordering::Acquire),
                    Side::Right => (*p.node).left.load(Ordering::Acquire),
                };
                Self::store_child(gp.node, gp.side, sibling);
                (*gp.node).lock.unlock(gp.side);
                // The parent stays locked forever: it is retired along with
                // the leaf.
                ssmem::retire(p.node);
                ssmem::retire(leaf);
                stats::record_operation();
                return Some(value);
            }
        }
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        let mut stack = Vec::new();
        // SAFETY: guard protects the traversal.
        unsafe {
            stack.push((*self.root).left.load(Ordering::Acquire));
            while let Some(n) = stack.pop() {
                let l = (*n).left.load(Ordering::Acquire);
                if l.is_null() {
                    let k = (*n).key;
                    if k != 0 && k != u64::MAX {
                        count += 1;
                    }
                } else {
                    stack.push(l);
                    stack.push((*n).right.load(Ordering::Acquire));
                }
            }
        }
        count
    }
}

impl TreeNode for Node {
    fn tree_key(&self) -> u64 {
        self.key
    }

    fn tree_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn tree_children(&self) -> (*mut Self, *mut Self) {
        (self.left.load(Ordering::Acquire), self.right.load(Ordering::Acquire))
    }
}

impl RangeWalk for BstTk {
    /// Lock-free in-order leaf walk (ASCY1 discipline, like `search`): the
    /// versioned edge locks are ignored entirely; reachable leaves are
    /// live.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every traversed node.
        unsafe { walk_tree(self.root, lo, visit) }
    }
}

impl_ordered_map!(BstTk);

impl Default for BstTk {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for BstTk {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; every reachable node freed once.
        unsafe {
            let mut stack = vec![self.root];
            while let Some(n) = stack.pop() {
                let l = (*n).left.load(Ordering::Relaxed);
                let r = (*n).right.load(Ordering::Relaxed);
                if !l.is_null() {
                    stack.push(l);
                }
                if !r.is_null() {
                    stack.push(r);
                }
                ssmem::dealloc_immediate(n);
            }
        }
    }
}

impl std::fmt::Debug for BstTk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BstTk").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let t = BstTk::new();
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert!(t.insert(k, k + 1));
        }
        assert!(!t.insert(25, 0));
        assert_eq!(t.size(), 7);
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            assert_eq!(t.search(k), Some(k + 1), "key {k}");
        }
        assert_eq!(t.remove(25), Some(26));
        assert_eq!(t.remove(25), None);
        assert_eq!(t.search(10), Some(11));
        assert_eq!(t.search(30), Some(31));
        assert_eq!(t.size(), 6);
    }

    #[test]
    fn remove_everything_and_reuse() {
        let t = BstTk::new();
        for round in 0..3u64 {
            for k in 1..=128u64 {
                assert!(t.insert(k, k * (round + 1)), "round {round} insert {k}");
            }
            assert_eq!(t.size(), 128);
            for k in 1..=128u64 {
                assert_eq!(t.remove(k), Some(k * (round + 1)), "round {round} remove {k}");
            }
            assert_eq!(t.size(), 0);
        }
    }

    #[test]
    fn stale_parse_is_rejected() {
        // A remove that races with an insert on the same edge must restart
        // rather than corrupt the tree. (Single-threaded approximation: the
        // versioned locks simply validate; the concurrent case is covered by
        // the full_suite stress tests in the module tests.)
        let t = BstTk::new();
        assert!(t.insert(10, 1));
        assert!(t.insert(20, 2));
        assert!(t.insert(5, 3));
        assert_eq!(t.remove(10), Some(1));
        assert_eq!(t.search(20), Some(2));
        assert_eq!(t.search(5), Some(3));
    }
}
