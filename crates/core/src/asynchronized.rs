//! The asynchronized baselines (the paper's `async` structures).
//!
//! The paper's methodology (§1, §4) estimates an upper bound for a data
//! structure's scalability by running its *sequential* implementation shared
//! between threads without synchronization. These executions are not
//! linearizable — elements can be lost when updates race — but their
//! throughput indicates what a correct concurrent implementation could
//! ideally achieve; the best CSDSs come within ~10% of it.
//!
//! In this Rust reproduction the asynchronized structures use `Relaxed`
//! atomics for all shared fields, so they compile to the same plain loads
//! and stores as the sequential code (no synchronization cost) while keeping
//! the implementation free of undefined behaviour. Garbage collection is
//! disabled for them, exactly as in the paper.
//!
//! This module re-exports all five baselines under their paper names.

pub use crate::bst::{AsyncBstExternal, AsyncBstInternal};
pub use crate::hashtable::AsyncHashTable;
pub use crate::list::AsyncList;
pub use crate::skiplist::AsyncSkipList;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ConcurrentMap;
    use std::sync::Arc;

    /// The asynchronized structures must at least survive concurrent use
    /// without crashing (their results are allowed to be incorrect).
    #[test]
    fn async_structures_survive_concurrency() {
        let list = Arc::new(AsyncList::new());
        let table = Arc::new(AsyncHashTable::with_buckets(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let list = Arc::clone(&list);
            let table = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let k = 1 + (i * 7 + t * 13) % 128;
                    let _ = list.insert(k, i);
                    let _ = table.insert(k, i);
                    let _ = list.search(k);
                    let _ = table.search(k);
                    if i % 3 == 0 {
                        let _ = list.remove(k);
                        let _ = table.remove(k);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // No assertion on contents: the whole point is that these are
        // incorrect under concurrency; we only require memory safety.
        let _ = list.size();
        let _ = table.size();
    }
}
