//! A name → constructor registry over every CSDS implementation.
//!
//! The benchmark harness uses this registry to sweep "all linked lists" or
//! "all hash tables" the way the paper's Figure 2 does, and to look
//! algorithms up by the names used in the figures (`lazy`, `pugh`,
//! `harris-opt`, `clht-lb`, ...).

use std::sync::Arc;

use crate::api::{ConcurrentMap, StructureKind, SyncKind};
use crate::{bst, hashtable, list, skiplist};

/// A constructor for one algorithm. `capacity` is the expected number of
/// elements (used by hash tables to size their bucket arrays; ignored by the
/// pointer-based structures).
pub type Constructor = fn(capacity: usize) -> Arc<dyn ConcurrentMap>;

/// One registered algorithm.
#[derive(Clone)]
pub struct AlgorithmEntry {
    /// Name as used in the paper's figures (e.g. `"lazy"`, `"clht-lb"`).
    pub name: &'static str,
    /// Which abstract structure it implements.
    pub structure: StructureKind,
    /// Synchronization family (seq / flb / lb / lf).
    pub kind: SyncKind,
    /// Whether this is an asynchronized (non-linearizable) baseline.
    pub asynchronized: bool,
    /// Constructor.
    pub construct: Constructor,
}

impl std::fmt::Debug for AlgorithmEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmEntry")
            .field("name", &self.name)
            .field("structure", &self.structure)
            .field("kind", &self.kind)
            .field("asynchronized", &self.asynchronized)
            .finish()
    }
}

macro_rules! entry {
    ($name:literal, $structure:expr, $kind:expr, $async_:expr, $ctor:expr) => {
        AlgorithmEntry {
            name: $name,
            structure: $structure,
            kind: $kind,
            asynchronized: $async_,
            construct: $ctor,
        }
    };
}

/// Returns every algorithm in ASCYLIB-RS (Table 1 plus the ASCY
/// re-engineered variants and the two new algorithms).
pub fn all_algorithms() -> Vec<AlgorithmEntry> {
    use StructureKind::*;
    use SyncKind::*;
    vec![
        // Linked lists.
        entry!("ll-async", LinkedList, Sequential, true, |_| Arc::new(list::AsyncList::new())),
        entry!("ll-coupling", LinkedList, FullyLockBased, false, |_| Arc::new(list::CouplingList::new())),
        entry!("ll-pugh", LinkedList, LockBased, false, |_| Arc::new(list::PughList::new())),
        entry!("ll-lazy", LinkedList, LockBased, false, |_| Arc::new(list::LazyList::new())),
        entry!("ll-copy", LinkedList, LockBased, false, |_| Arc::new(list::CopyList::new())),
        entry!("ll-harris", LinkedList, LockFree, false, |_| Arc::new(list::HarrisList::new())),
        entry!("ll-michael", LinkedList, LockFree, false, |_| Arc::new(list::MichaelList::new())),
        entry!("ll-harris-opt", LinkedList, LockFree, false, |_| Arc::new(list::HarrisOptList::new())),
        // Hash tables.
        entry!("ht-async", HashTable, Sequential, true, |c| Arc::new(hashtable::AsyncHashTable::with_buckets(c))),
        entry!("ht-coupling", HashTable, FullyLockBased, false, |c| Arc::new(hashtable::CouplingHashTable::with_buckets(c))),
        entry!("ht-pugh", HashTable, LockBased, false, |c| Arc::new(hashtable::PughHashTable::with_buckets(c))),
        entry!("ht-lazy", HashTable, LockBased, false, |c| Arc::new(hashtable::LazyHashTable::with_buckets(c))),
        entry!("ht-copy", HashTable, LockBased, false, |c| Arc::new(hashtable::CopyHashTable::with_buckets(c))),
        entry!("ht-urcu", HashTable, LockBased, false, |c| Arc::new(hashtable::UrcuHashTable::with_buckets(c))),
        entry!("ht-urcu-ssmem", HashTable, LockBased, false, |c| Arc::new(hashtable::UrcuHashTable::with_buckets_ssmem(c))),
        entry!("ht-java", HashTable, LockBased, false, |c| Arc::new(hashtable::JavaHashTable::with_capacity(c))),
        entry!("ht-tbb", HashTable, FullyLockBased, false, |c| Arc::new(hashtable::TbbHashTable::with_buckets(c))),
        entry!("ht-harris", HashTable, LockFree, false, |c| Arc::new(hashtable::HarrisHashTable::with_buckets(c))),
        entry!("ht-clht-lb", HashTable, LockBased, false, |c| Arc::new(hashtable::ClhtLb::with_capacity(c))),
        entry!("ht-clht-lf", HashTable, LockFree, false, |c| Arc::new(hashtable::ClhtLf::with_capacity(c))),
        // Skip lists.
        entry!("sl-async", SkipList, Sequential, true, |_| Arc::new(skiplist::AsyncSkipList::new())),
        entry!("sl-pugh", SkipList, LockBased, false, |_| Arc::new(skiplist::PughSkipList::new())),
        entry!("sl-herlihy", SkipList, LockBased, false, |_| Arc::new(skiplist::HerlihySkipList::new())),
        entry!("sl-fraser", SkipList, LockFree, false, |_| Arc::new(skiplist::FraserSkipList::new())),
        entry!("sl-fraser-opt", SkipList, LockFree, false, |_| Arc::new(skiplist::FraserOptSkipList::new())),
        // BSTs.
        entry!("bst-async-int", Bst, Sequential, true, |_| Arc::new(bst::AsyncBstInternal::new())),
        entry!("bst-async-ext", Bst, Sequential, true, |_| Arc::new(bst::AsyncBstExternal::new())),
        entry!("bst-ellen", Bst, LockFree, false, |_| Arc::new(bst::EllenBst::new())),
        entry!("bst-natarajan", Bst, LockFree, false, |_| Arc::new(bst::NatarajanBst::new())),
        entry!("bst-tk", Bst, LockBased, false, |_| Arc::new(bst::BstTk::new())),
    ]
}

/// All algorithms implementing the given structure.
pub fn by_structure(structure: StructureKind) -> Vec<AlgorithmEntry> {
    all_algorithms().into_iter().filter(|e| e.structure == structure).collect()
}

/// Looks an algorithm up by its registry name.
pub fn by_name(name: &str) -> Option<AlgorithmEntry> {
    all_algorithms().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_structures() {
        let all = all_algorithms();
        assert!(all.len() >= 29, "expected at least 29 algorithms, got {}", all.len());
        for kind in [
            StructureKind::LinkedList,
            StructureKind::HashTable,
            StructureKind::SkipList,
            StructureKind::Bst,
        ] {
            let entries = by_structure(kind);
            assert!(entries.len() >= 5, "{kind} has too few entries");
            assert!(
                entries.iter().any(|e| e.asynchronized),
                "{kind} needs an asynchronized baseline"
            );
        }
    }

    #[test]
    fn every_registered_algorithm_works() {
        for entry in all_algorithms() {
            let map = (entry.construct)(128);
            assert!(map.insert(10, 100), "{}", entry.name);
            assert!(!map.insert(10, 100), "{}", entry.name);
            assert_eq!(map.search(10), Some(100), "{}", entry.name);
            assert_eq!(map.remove(10), Some(100), "{}", entry.name);
            assert_eq!(map.search(10), None, "{}", entry.name);
            assert_eq!(map.size(), 0, "{}", entry.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("ht-clht-lb").is_some());
        assert!(by_name("bst-tk").is_some());
        assert!(by_name("nonexistent").is_none());
        assert_eq!(by_name("ll-lazy").unwrap().kind, SyncKind::LockBased);
    }
}
