//! The lazy linked list (Heller, Herlihy, Luchangco, Moir, Scherer, Shavit).
//!
//! Nodes are deleted in two steps: a logical *mark* followed by a physical
//! unlink, both performed while holding the locks of the victim and its
//! predecessor. Searching simply ignores marked nodes and therefore follows
//! **ASCY1** (no stores, waiting or retries). The parse phase of updates is
//! identical to the search (**ASCY2**). With the default configuration the
//! list also follows **ASCY3**: an update whose parse already shows that it
//! cannot succeed returns without acquiring any lock. The
//! [`LazyList::without_ascy3`] constructor disables that short-cut to
//! reproduce the `lazy-no` variant of Figure 6.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;
use ascylib_sync::TtasLock;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    marked: AtomicBool,
    lock: TtasLock,
    next: AtomicPtr<Node>,
}

fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        marked: AtomicBool::new(false),
        lock: TtasLock::new(),
        next: AtomicPtr::new(next),
    })
}

/// The lazy concurrent linked list (hybrid lock-based).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::list::LazyList;
///
/// let list = LazyList::new();
/// assert!(list.insert(10, 100));
/// assert_eq!(list.search(10), Some(100));
/// assert_eq!(list.remove(10), Some(100));
/// ```
pub struct LazyList {
    head: *mut Node,
    ascy3: bool,
}

// SAFETY: all mutation of shared node state happens through atomics and
// per-node locks; retired nodes are reclaimed only after an SSMEM grace
// period, so concurrent traversals never dereference freed memory.
unsafe impl Send for LazyList {}
// SAFETY: see above.
unsafe impl Sync for LazyList {}

impl LazyList {
    /// Creates an empty list with the ASCY3 "read-only unsuccessful update"
    /// optimization enabled (the paper's default `lazy`).
    pub fn new() -> Self {
        Self::with_ascy3(true)
    }

    /// Creates the `lazy-no` variant of Figure 6: unsuccessful updates still
    /// acquire the locks before failing.
    pub fn without_ascy3() -> Self {
        Self::with_ascy3(false)
    }

    fn with_ascy3(ascy3: bool) -> Self {
        let tail = new_node(u64::MAX, 0, std::ptr::null_mut());
        let head = new_node(0, 0, tail);
        Self { head, ascy3 }
    }

    /// Traverses to the first node with `node.key >= key`, returning the
    /// predecessor and that node. Performs no stores (ASCY1/2).
    #[inline]
    fn find(&self, key: u64) -> (*mut Node, *mut Node) {
        let mut traversed = 0u64;
        // SAFETY: traversal happens under the caller's SSMEM guard, so nodes
        // reached through next pointers are not reclaimed while we read them.
        unsafe {
            let mut pred = self.head;
            let mut curr = (*pred).next.load(Ordering::Acquire);
            while (*curr).key < key {
                pred = curr;
                curr = (*curr).next.load(Ordering::Acquire);
                traversed += 1;
            }
            stats::record_traversal(traversed);
            (pred, curr)
        }
    }

    /// Lazy-list validation: both nodes unmarked and still adjacent.
    ///
    /// # Safety
    ///
    /// Both pointers must refer to nodes protected by the current guard.
    #[inline]
    unsafe fn validate(pred: *mut Node, curr: *mut Node) -> bool {
        // SAFETY: per the function contract.
        unsafe {
            !(*pred).marked.load(Ordering::Acquire)
                && !(*curr).marked.load(Ordering::Acquire)
                && (*pred).next.load(Ordering::Acquire) == curr
        }
    }
}

impl ConcurrentMap for LazyList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let (_, curr) = self.find(key);
        stats::record_operation();
        // SAFETY: guard protects the traversed nodes.
        unsafe {
            if (*curr).key == key && !(*curr).marked.load(Ordering::Acquire) {
                Some((*curr).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let (pred, curr) = self.find(key);
            // SAFETY: guard protects pred/curr; locks serialize the
            // modification phase.
            unsafe {
                if self.ascy3
                    && (*curr).key == key
                    && !(*curr).marked.load(Ordering::Acquire)
                {
                    // ASCY3: fail without any store.
                    stats::record_operation();
                    return false;
                }
                (*pred).lock.lock();
                stats::record_lock();
                (*curr).lock.lock();
                stats::record_lock();
                if Self::validate(pred, curr) {
                    let result = if (*curr).key == key {
                        false
                    } else {
                        let node = new_node(key, value, curr);
                        (*pred).next.store(node, Ordering::Release);
                        stats::record_store();
                        true
                    };
                    (*curr).lock.unlock();
                    (*pred).lock.unlock();
                    stats::record_operation();
                    return result;
                }
                (*curr).lock.unlock();
                (*pred).lock.unlock();
                stats::record_restart();
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let (pred, curr) = self.find(key);
            // SAFETY: guard protects pred/curr; locks serialize the
            // modification phase; the victim is retired only after being
            // unlinked.
            unsafe {
                let parse_failed =
                    (*curr).key != key || (*curr).marked.load(Ordering::Acquire);
                if parse_failed {
                    if !self.ascy3 {
                        // `lazy-no`: acquire the locks even though the update
                        // cannot succeed, as the non-ASCY3 original does.
                        (*pred).lock.lock();
                        stats::record_lock();
                        (*pred).lock.unlock();
                    }
                    stats::record_operation();
                    return None;
                }
                (*pred).lock.lock();
                stats::record_lock();
                (*curr).lock.lock();
                stats::record_lock();
                if Self::validate(pred, curr) && (*curr).key == key {
                    let value = (*curr).value.load(Ordering::Acquire);
                    (*curr).marked.store(true, Ordering::Release);
                    stats::record_store();
                    (*pred)
                        .next
                        .store((*curr).next.load(Ordering::Acquire), Ordering::Release);
                    stats::record_store();
                    (*curr).lock.unlock();
                    (*pred).lock.unlock();
                    // SAFETY: the node is unlinked; readers still traversing
                    // it hold guards created before this point.
                    ssmem::retire(curr);
                    stats::record_operation();
                    return Some(value);
                }
                (*curr).lock.unlock();
                (*pred).lock.unlock();
                stats::record_restart();
            }
        }
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        // SAFETY: guard protects the traversal.
        unsafe {
            let mut curr = (*self.head).next.load(Ordering::Acquire);
            while (*curr).key != u64::MAX {
                if !(*curr).marked.load(Ordering::Acquire) {
                    count += 1;
                }
                curr = (*curr).next.load(Ordering::Acquire);
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn chain_live(&self) -> bool {
        !self.marked.load(Ordering::Acquire)
    }

    fn chain_next(&self) -> *mut Self {
        self.next.load(Ordering::Acquire)
    }
}

impl RangeWalk for LazyList {
    /// Same ASCY1 discipline as `find`: traverse without stores, skipping
    /// marked nodes.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every node reached through `next`.
        unsafe { walk_chain(self.head, lo, visit) }
    }
}

impl_ordered_map!(LazyList);

impl Default for LazyList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for LazyList {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; every node still linked is freed once.
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = (*curr).next.load(Ordering::Relaxed);
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

impl std::fmt::Debug for LazyList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyList")
            .field("ascy3", &self.ascy3)
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let l = LazyList::new();
        assert!(l.insert(3, 30));
        assert!(l.insert(1, 10));
        assert!(l.insert(2, 20));
        assert!(!l.insert(2, 21));
        assert_eq!(l.size(), 3);
        assert_eq!(l.search(2), Some(20));
        assert_eq!(l.remove(2), Some(20));
        assert_eq!(l.remove(2), None);
        assert_eq!(l.size(), 2);
    }

    #[test]
    fn ascy3_variant_matches_non_ascy3_semantics() {
        let a = LazyList::new();
        let b = LazyList::without_ascy3();
        for k in 1..=20u64 {
            assert_eq!(a.insert(k, k), b.insert(k, k));
        }
        for k in (1..=25u64).rev() {
            assert_eq!(a.remove(k), b.remove(k), "remove({k})");
            assert_eq!(a.insert(k, 1), b.insert(k, 1), "insert({k})");
        }
        assert_eq!(a.size(), b.size());
    }
}
