//! Harris's lock-free linked list.
//!
//! Nodes are deleted in two steps: the victim's `next` pointer is *marked*
//! with a CAS (logical deletion) and a second CAS physically unlinks it.
//! Crucially, in the original algorithm the **search helper also performs the
//! clean-up**: when it finds logically deleted nodes it tries to unlink them
//! and restarts if the CAS fails. This violates ASCY1/ASCY2 (searches
//! perform stores and may restart), which is exactly what the paper
//! re-engineers in [`super::HarrisOptList`].

use std::sync::atomic::{AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::marked::{tag, MarkedPtr};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::stats;

#[repr(C)]
pub(crate) struct Node {
    pub(crate) key: u64,
    pub(crate) value: AtomicU64,
    pub(crate) next: MarkedPtr<Node>,
}

pub(crate) fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        next: MarkedPtr::new(next, tag::CLEAN),
    })
}

/// Harris's lock-free linked list.
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::list::HarrisList;
///
/// let list = HarrisList::new();
/// assert!(list.insert(10, 1));
/// assert!(list.contains(10));
/// assert_eq!(list.remove(10), Some(1));
/// ```
pub struct HarrisList {
    head: *mut Node,
    tail: *mut Node,
}

// SAFETY: all shared node state is accessed through atomics; unlinked nodes
// are retired through SSMEM and reclaimed only after a grace period, so
// concurrent traversals (which always run under a guard) never touch freed
// memory.
unsafe impl Send for HarrisList {}
// SAFETY: see above.
unsafe impl Sync for HarrisList {}

impl HarrisList {
    /// Creates an empty list.
    pub fn new() -> Self {
        let tail = new_node(u64::MAX, 0, std::ptr::null_mut());
        let head = new_node(0, 0, tail);
        Self { head, tail }
    }

    /// Harris's `search`: returns `(left, right)` where `left` is the last
    /// unmarked node with key `< key` and `right` the first unmarked node
    /// with key `>= key`; any marked nodes in between are unlinked (and the
    /// operation restarts if the clean-up CAS fails).
    ///
    /// Caller must hold an SSMEM guard.
    fn harris_search(&self, key: u64) -> (*mut Node, *mut Node) {
        // SAFETY: caller holds a guard; nodes reached through next pointers
        // are protected from reclamation.
        unsafe {
            'retry: loop {
                let mut left = self.head;
                let mut left_next = (*left).next.load(Ordering::Acquire);
                let mut traversed = 0u64;

                // Phase 1: find left and right.
                let mut t = self.head;
                let mut t_next = (*t).next.load(Ordering::Acquire);
                loop {
                    if t_next.1 == tag::CLEAN {
                        left = t;
                        left_next = t_next;
                    }
                    t = t_next.0;
                    if t == self.tail {
                        break;
                    }
                    t_next = (*t).next.load(Ordering::Acquire);
                    traversed += 1;
                    if t_next.1 != tag::CLEAN || (*t).key < key {
                        continue;
                    }
                    break;
                }
                let right = t;
                stats::record_traversal(traversed);

                // Phase 2: check adjacency.
                if left_next.0 == right {
                    if right != self.tail
                        && (*right).next.load(Ordering::Acquire).1 != tag::CLEAN
                    {
                        stats::record_restart();
                        continue 'retry;
                    }
                    return (left, right);
                }

                // Phase 3: unlink the marked chain between left and right.
                let cas_ok = (*left)
                    .next
                    .compare_exchange(
                        left_next.0,
                        left_next.1,
                        right,
                        tag::CLEAN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(cas_ok);
                if cas_ok {
                    // Retire the excised chain; we are the only thread whose
                    // unlink CAS succeeded for these nodes.
                    let mut victim = left_next.0;
                    while victim != right {
                        let succ = (*victim).next.load(Ordering::Acquire).0;
                        ssmem::retire(victim);
                        victim = succ;
                    }
                    if right != self.tail
                        && (*right).next.load(Ordering::Acquire).1 != tag::CLEAN
                    {
                        stats::record_restart();
                        continue 'retry;
                    }
                    return (left, right);
                }
                stats::record_restart();
            }
        }
    }
}

impl ConcurrentMap for HarrisList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let (_, right) = self.harris_search(key);
        stats::record_operation();
        // SAFETY: guard protects `right`.
        unsafe {
            if right != self.tail && (*right).key == key {
                Some((*right).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let (left, right) = self.harris_search(key);
            // SAFETY: guard protects left/right; the new node is initialized
            // before the publishing CAS.
            unsafe {
                if right != self.tail && (*right).key == key {
                    stats::record_operation();
                    return false;
                }
                let node = new_node(key, value, right);
                let ok = (*left)
                    .next
                    .compare_exchange(
                        right,
                        tag::CLEAN,
                        node,
                        tag::CLEAN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(ok);
                if ok {
                    stats::record_operation();
                    return true;
                }
                // Not published: safe to free immediately.
                ssmem::dealloc_immediate(node);
                stats::record_restart();
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let (left, right) = self.harris_search(key);
            // SAFETY: guard protects left/right; only the thread whose unlink
            // CAS succeeds retires the victim.
            unsafe {
                if right == self.tail || (*right).key != key {
                    stats::record_operation();
                    return None;
                }
                let (succ, m) = (*right).next.load(Ordering::Acquire);
                if m != tag::CLEAN {
                    // Already logically deleted by someone else; retry to
                    // either find another node with this key or conclude.
                    stats::record_restart();
                    continue;
                }
                let value = (*right).value.load(Ordering::Acquire);
                let marked = (*right)
                    .next
                    .compare_exchange(
                        succ,
                        tag::CLEAN,
                        succ,
                        tag::MARK,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(marked);
                if !marked {
                    stats::record_restart();
                    continue;
                }
                // Try to unlink immediately; fall back to a clean-up search.
                let unlinked = (*left)
                    .next
                    .compare_exchange(
                        right,
                        tag::CLEAN,
                        succ,
                        tag::CLEAN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(unlinked);
                if unlinked {
                    ssmem::retire(right);
                } else {
                    // The clean-up search will unlink (and retire) it.
                    let _ = self.harris_search(key);
                }
                stats::record_operation();
                return Some(value);
            }
        }
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        // SAFETY: guard protects the traversal.
        unsafe {
            let mut curr = (*self.head).next.load(Ordering::Acquire).0;
            while curr != self.tail {
                let (next, m) = (*curr).next.load(Ordering::Acquire);
                if m == tag::CLEAN {
                    count += 1;
                }
                curr = next;
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn chain_live(&self) -> bool {
        // A marked next pointer is Harris's logical deletion.
        self.next.load(Ordering::Acquire).1 == tag::CLEAN
    }

    fn chain_next(&self) -> *mut Self {
        self.next.load(Ordering::Acquire).0
    }
}

impl RangeWalk for HarrisList {
    /// ASCY1-style wait-free range traversal: no stores, no retries; marked
    /// nodes are skipped (not cleaned up).
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every node reached through `next`.
        unsafe { walk_chain(self.head, lo, visit) }
    }
}

impl_ordered_map!(HarrisList);

impl Default for HarrisList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for HarrisList {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; every node still reachable (marked or
        // not) is freed exactly once.
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = (*curr).next.load(Ordering::Relaxed).0;
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

impl std::fmt::Debug for HarrisList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarrisList").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let l = HarrisList::new();
        assert!(l.insert(2, 20));
        assert!(l.insert(1, 10));
        assert!(l.insert(3, 30));
        assert!(!l.insert(2, 21));
        assert_eq!(l.size(), 3);
        assert_eq!(l.search(2), Some(20));
        assert_eq!(l.remove(2), Some(20));
        assert_eq!(l.remove(2), None);
        assert_eq!(l.search(2), None);
        assert_eq!(l.size(), 2);
    }

    #[test]
    fn interleaved_insert_remove() {
        let l = HarrisList::new();
        for round in 0..5u64 {
            for k in 1..=50u64 {
                assert!(l.insert(k, k + round), "insert({k}) round {round}");
            }
            for k in 1..=50u64 {
                assert_eq!(l.remove(k), Some(k + round), "remove({k}) round {round}");
            }
            assert_eq!(l.size(), 0);
        }
    }
}
