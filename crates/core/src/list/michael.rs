//! Michael's lock-free linked list.
//!
//! A refactoring of Harris's list (Michael, SPAA 2002) in which the search
//! helper unlinks *one* marked node at a time and restarts from the head
//! whenever a CAS fails or the predecessor changes. The structure of `find`
//! (returning the address of the predecessor's next field) makes safe memory
//! reclamation straightforward, which is why ASCYLIB ships it alongside
//! Harris's original. Like Harris's list it violates ASCY1/2: searches help
//! with clean-up and may restart.

use std::sync::atomic::{AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::marked::{tag, MarkedPtr};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    next: MarkedPtr<Node>,
}

fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        next: MarkedPtr::new(next, tag::CLEAN),
    })
}

/// Michael's lock-free linked list.
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::list::MichaelList;
///
/// let list = MichaelList::new();
/// assert!(list.insert(4, 44));
/// assert_eq!(list.remove(4), Some(44));
/// ```
pub struct MichaelList {
    head: *mut Node,
    tail: *mut Node,
}

// SAFETY: shared node state is atomic; nodes are retired only by the thread
// whose unlink CAS succeeded and reclaimed after an SSMEM grace period.
unsafe impl Send for MichaelList {}
// SAFETY: see above.
unsafe impl Sync for MichaelList {}

/// Result of `find`: the predecessor's next-field and the current node.
struct Position {
    prev: *const MarkedPtr<Node>,
    curr: *mut Node,
}

impl MichaelList {
    /// Creates an empty list.
    pub fn new() -> Self {
        let tail = new_node(u64::MAX, 0, std::ptr::null_mut());
        let head = new_node(0, 0, tail);
        Self { head, tail }
    }

    /// Michael's `find`: positions on the first unmarked node with
    /// `key >= key`, unlinking marked nodes one at a time along the way and
    /// restarting from the head when a CAS fails.
    ///
    /// Caller must hold an SSMEM guard.
    fn find(&self, key: u64) -> Position {
        // SAFETY: caller holds a guard.
        unsafe {
            'retry: loop {
                let mut prev: *const MarkedPtr<Node> = &(*self.head).next;
                let mut curr = (*prev).load(Ordering::Acquire).0;
                let mut traversed = 0u64;
                loop {
                    if curr == self.tail {
                        stats::record_traversal(traversed);
                        return Position { prev, curr };
                    }
                    let (next, cmark) = (*curr).next.load(Ordering::Acquire);
                    // Re-validate that prev still points at curr, unmarked.
                    if (*prev).load(Ordering::Acquire) != (curr, tag::CLEAN) {
                        stats::record_restart();
                        continue 'retry;
                    }
                    if cmark == tag::CLEAN {
                        if (*curr).key >= key {
                            stats::record_traversal(traversed);
                            return Position { prev, curr };
                        }
                        prev = &(*curr).next;
                        curr = next;
                    } else {
                        // curr is logically deleted: unlink exactly this node.
                        let ok = (*prev)
                            .compare_exchange(
                                curr,
                                tag::CLEAN,
                                next,
                                tag::CLEAN,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok();
                        stats::record_atomic(ok);
                        if !ok {
                            stats::record_restart();
                            continue 'retry;
                        }
                        ssmem::retire(curr);
                        curr = next;
                    }
                    traversed += 1;
                }
            }
        }
    }
}

impl ConcurrentMap for MichaelList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let pos = self.find(key);
        stats::record_operation();
        // SAFETY: guard protects the node.
        unsafe {
            if pos.curr != self.tail && (*pos.curr).key == key {
                Some((*pos.curr).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let pos = self.find(key);
            // SAFETY: guard protects the nodes; the new node is fully
            // initialized before the publishing CAS.
            unsafe {
                if pos.curr != self.tail && (*pos.curr).key == key {
                    stats::record_operation();
                    return false;
                }
                let node = new_node(key, value, pos.curr);
                let ok = (*pos.prev)
                    .compare_exchange(
                        pos.curr,
                        tag::CLEAN,
                        node,
                        tag::CLEAN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(ok);
                if ok {
                    stats::record_operation();
                    return true;
                }
                ssmem::dealloc_immediate(node);
                stats::record_restart();
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let pos = self.find(key);
            // SAFETY: guard protects the nodes; only the unlinking CAS owner
            // (here or inside `find`) retires the victim.
            unsafe {
                if pos.curr == self.tail || (*pos.curr).key != key {
                    stats::record_operation();
                    return None;
                }
                let (next, m) = (*pos.curr).next.load(Ordering::Acquire);
                if m != tag::CLEAN {
                    stats::record_restart();
                    continue;
                }
                let value = (*pos.curr).value.load(Ordering::Acquire);
                // Logical deletion.
                let marked = (*pos.curr)
                    .next
                    .compare_exchange(
                        next,
                        tag::CLEAN,
                        next,
                        tag::MARK,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(marked);
                if !marked {
                    stats::record_restart();
                    continue;
                }
                // Physical deletion: try once; otherwise the next find() will
                // clean up (and retire).
                let unlinked = (*pos.prev)
                    .compare_exchange(
                        pos.curr,
                        tag::CLEAN,
                        next,
                        tag::CLEAN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(unlinked);
                if unlinked {
                    ssmem::retire(pos.curr);
                } else {
                    let _ = self.find(key);
                }
                stats::record_operation();
                return Some(value);
            }
        }
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        // SAFETY: guard protects the traversal.
        unsafe {
            let mut curr = (*self.head).next.load(Ordering::Acquire).0;
            while curr != self.tail {
                let (next, m) = (*curr).next.load(Ordering::Acquire);
                if m == tag::CLEAN {
                    count += 1;
                }
                curr = next;
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn chain_live(&self) -> bool {
        self.next.load(Ordering::Acquire).1 == tag::CLEAN
    }

    fn chain_next(&self) -> *mut Self {
        self.next.load(Ordering::Acquire).0
    }
}

impl RangeWalk for MichaelList {
    /// Range traversal without the clean-up/restart behaviour of `find`:
    /// marked nodes are simply skipped.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every node reached through `next`.
        unsafe { walk_chain(self.head, lo, visit) }
    }
}

impl_ordered_map!(MichaelList);

impl Default for MichaelList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MichaelList {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access.
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = (*curr).next.load(Ordering::Relaxed).0;
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

impl std::fmt::Debug for MichaelList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MichaelList").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let l = MichaelList::new();
        assert!(l.insert(5, 50));
        assert!(l.insert(6, 60));
        assert!(!l.insert(5, 51));
        assert_eq!(l.search(6), Some(60));
        assert_eq!(l.remove(5), Some(50));
        assert_eq!(l.remove(5), None);
        assert_eq!(l.size(), 1);
    }
}
