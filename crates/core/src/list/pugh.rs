//! Pugh's concurrent linked list.
//!
//! Operations search/parse the list optimistically without any store
//! (ASCY1/2). Updates lock the predecessor, validate it, and perform the
//! modification. Removals employ **pointer reversal**: the next pointer of a
//! removed node is redirected to its predecessor so that a concurrent
//! search/parse that is sitting on the removed node always finds a correct
//! path back into the list (Pugh, "Concurrent Maintenance of Skip Lists",
//! 1990 — the list is the one-level special case).
//!
//! With the default configuration the list follows **ASCY3** (an update whose
//! parse shows it cannot succeed fails without acquiring locks);
//! [`PughList::without_ascy3`] builds the `pugh-no` variant of Figure 6.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;
use ascylib_sync::TtasLock;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    removed: AtomicBool,
    lock: TtasLock,
    next: AtomicPtr<Node>,
}

fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        removed: AtomicBool::new(false),
        lock: TtasLock::new(),
        next: AtomicPtr::new(next),
    })
}

/// Pugh's optimistic linked list (hybrid lock-based).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::list::PughList;
///
/// let list = PughList::new();
/// assert!(list.insert(10, 1));
/// assert_eq!(list.search(10), Some(1));
/// assert_eq!(list.remove(10), Some(1));
/// ```
pub struct PughList {
    head: *mut Node,
    ascy3: bool,
}

// SAFETY: shared node state is atomic; updates are serialized by per-node
// locks; removed nodes keep a valid (reversed) next pointer and are reclaimed
// only after an SSMEM grace period.
unsafe impl Send for PughList {}
// SAFETY: see above.
unsafe impl Sync for PughList {}

impl PughList {
    /// Creates an empty list with ASCY3 enabled (the paper's `pugh`).
    pub fn new() -> Self {
        Self::with_ascy3(true)
    }

    /// Creates the `pugh-no` variant of Figure 6 (unsuccessful updates still
    /// lock).
    pub fn without_ascy3() -> Self {
        Self::with_ascy3(false)
    }

    fn with_ascy3(ascy3: bool) -> Self {
        let tail = new_node(u64::MAX, 0, std::ptr::null_mut());
        let head = new_node(0, 0, tail);
        Self { head, ascy3 }
    }

    /// Optimistic parse. Because removed nodes point back to their
    /// predecessor, the traversal may briefly move backwards but always
    /// reaches the first live node with `key >= key`.
    #[inline]
    fn find(&self, key: u64) -> (*mut Node, *mut Node) {
        let mut traversed = 0u64;
        // SAFETY: performed under the caller's SSMEM guard.
        unsafe {
            let mut pred = self.head;
            let mut curr = (*pred).next.load(Ordering::Acquire);
            loop {
                if (*curr).key >= key && !(*curr).removed.load(Ordering::Acquire) {
                    break;
                }
                if (*curr).removed.load(Ordering::Acquire) {
                    // Pointer reversal: follow the back pointer and resume.
                    curr = (*curr).next.load(Ordering::Acquire);
                    if (*curr).removed.load(Ordering::Acquire) || (*curr).key >= key {
                        // Rare: the predecessor was removed as well (or we
                        // jumped back past the key); restart from the head.
                        pred = self.head;
                        curr = (*pred).next.load(Ordering::Acquire);
                    }
                    continue;
                }
                pred = curr;
                curr = (*curr).next.load(Ordering::Acquire);
                traversed += 1;
            }
            stats::record_traversal(traversed);
            (pred, curr)
        }
    }
}

impl ConcurrentMap for PughList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let (_, curr) = self.find(key);
        stats::record_operation();
        // SAFETY: guard protects the traversal.
        unsafe {
            if (*curr).key == key {
                Some((*curr).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let (pred, curr) = self.find(key);
            // SAFETY: guard protects pred/curr; the predecessor's lock
            // serializes modifications of its next pointer.
            unsafe {
                if self.ascy3 && (*curr).key == key {
                    stats::record_operation();
                    return false;
                }
                (*pred).lock.lock();
                stats::record_lock();
                let valid = !(*pred).removed.load(Ordering::Acquire)
                    && (*pred).next.load(Ordering::Acquire) == curr;
                if !valid {
                    (*pred).lock.unlock();
                    stats::record_restart();
                    continue;
                }
                let result = if (*curr).key == key {
                    false
                } else {
                    let node = new_node(key, value, curr);
                    (*pred).next.store(node, Ordering::Release);
                    stats::record_store();
                    true
                };
                (*pred).lock.unlock();
                stats::record_operation();
                return result;
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let (pred, curr) = self.find(key);
            // SAFETY: guard protects pred/curr; locks serialize the
            // modification; the victim keeps a valid back pointer and is
            // retired only after being unlinked.
            unsafe {
                if (*curr).key != key {
                    if !self.ascy3 {
                        (*pred).lock.lock();
                        stats::record_lock();
                        (*pred).lock.unlock();
                    }
                    stats::record_operation();
                    return None;
                }
                (*pred).lock.lock();
                stats::record_lock();
                (*curr).lock.lock();
                stats::record_lock();
                let valid = !(*pred).removed.load(Ordering::Acquire)
                    && !(*curr).removed.load(Ordering::Acquire)
                    && (*pred).next.load(Ordering::Acquire) == curr
                    && (*curr).key == key;
                if !valid {
                    (*curr).lock.unlock();
                    (*pred).lock.unlock();
                    stats::record_restart();
                    continue;
                }
                let value = (*curr).value.load(Ordering::Acquire);
                (*curr).removed.store(true, Ordering::Release);
                stats::record_store();
                // Unlink, then reverse the victim's pointer to its
                // predecessor so in-flight parses fall back into the list.
                (*pred)
                    .next
                    .store((*curr).next.load(Ordering::Acquire), Ordering::Release);
                stats::record_store();
                (*curr).next.store(pred, Ordering::Release);
                stats::record_store();
                (*curr).lock.unlock();
                (*pred).lock.unlock();
                ssmem::retire(curr);
                stats::record_operation();
                return Some(value);
            }
        }
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        // SAFETY: guard protects the traversal.
        unsafe {
            let mut curr = (*self.head).next.load(Ordering::Acquire);
            while (*curr).key != u64::MAX {
                if !(*curr).removed.load(Ordering::Acquire) {
                    count += 1;
                    curr = (*curr).next.load(Ordering::Acquire);
                } else {
                    curr = (*curr).next.load(Ordering::Acquire);
                }
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn chain_live(&self) -> bool {
        !self.removed.load(Ordering::Acquire)
    }

    fn chain_next(&self) -> *mut Self {
        self.next.load(Ordering::Acquire)
    }
}

impl RangeWalk for PughList {
    /// Optimistic store-free traversal. A removed node's reversed `next`
    /// pointer sends the walk *backwards* to its predecessor; the shared
    /// scan wrappers filter the resulting re-visits, so the emitted
    /// sequence stays strictly ascending.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every node reached through `next`.
        unsafe { walk_chain(self.head, lo, visit) }
    }
}

impl_ordered_map!(PughList);

impl Default for PughList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for PughList {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; only still-linked (live) nodes are
        // reachable and each is freed once.
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = if (*curr).key == u64::MAX {
                    std::ptr::null_mut()
                } else {
                    (*curr).next.load(Ordering::Relaxed)
                };
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

impl std::fmt::Debug for PughList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PughList")
            .field("ascy3", &self.ascy3)
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let l = PughList::new();
        for k in [7u64, 3, 9, 1] {
            assert!(l.insert(k, k));
        }
        assert!(!l.insert(3, 0));
        assert_eq!(l.remove(3), Some(3));
        assert_eq!(l.remove(3), None);
        assert_eq!(l.search(9), Some(9));
        assert_eq!(l.size(), 3);
    }

    #[test]
    fn reinsert_after_remove_uses_fresh_node() {
        let l = PughList::new();
        assert!(l.insert(5, 1));
        assert_eq!(l.remove(5), Some(1));
        assert!(l.insert(5, 2));
        assert_eq!(l.search(5), Some(2));
        assert_eq!(l.size(), 1);
    }
}
