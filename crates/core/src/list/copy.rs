//! The copy-on-write list (Java `CopyOnWriteArrayList` analogue).
//!
//! Elements live in a single sorted array. Searches read the current array
//! without any store (and benefit from the serial memory accesses the paper
//! highlights in §5/ASCY1). Updates take a global lock, build a complete new
//! copy of the array, and publish it with a single pointer store — which is
//! why the paper measures an enormous number of cache-line transfers per
//! update (Figure 3) and why the global lock becomes a bottleneck as soon as
//! updates are present.
//!
//! With ASCY3 enabled (default), an update that cannot succeed returns after
//! the read-only search, without taking the global lock;
//! [`CopyList::without_ascy3`] reproduces the `copy-no` variant of Figure 6.

use std::alloc::Layout;
use std::sync::atomic::{AtomicPtr, Ordering};

use ascylib_ssmem as ssmem;
use ascylib_sync::TicketLock;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::ordered::{impl_ordered_map, RangeWalk};
use crate::stats;

/// Array snapshot layout: `[len, k0, v0, k1, v1, ...]`, all `u64`, allocated
/// through SSMEM so that readers can keep traversing a replaced snapshot
/// until their grace period expires.
struct Snapshot;

impl Snapshot {
    fn layout(len: usize) -> Layout {
        Layout::array::<u64>(1 + 2 * len).expect("snapshot layout")
    }

    fn alloc(len: usize) -> *mut u64 {
        let ptr = ssmem::alloc_raw(Self::layout(len)) as *mut u64;
        // SAFETY: freshly allocated with room for the length header.
        unsafe { *ptr = len as u64 };
        ptr
    }

    /// # Safety
    ///
    /// `ptr` must point to a live snapshot allocation.
    unsafe fn len(ptr: *const u64) -> usize {
        // SAFETY: per contract.
        unsafe { *ptr as usize }
    }

    /// # Safety
    ///
    /// `ptr` must point to a live snapshot with `i < len`.
    unsafe fn pair(ptr: *const u64, i: usize) -> (u64, u64) {
        // SAFETY: per contract.
        unsafe { (*ptr.add(1 + 2 * i), *ptr.add(2 + 2 * i)) }
    }

    /// # Safety
    ///
    /// `ptr` must point to a live, exclusively owned snapshot with `i < len`.
    unsafe fn set_pair(ptr: *mut u64, i: usize, key: u64, value: u64) {
        // SAFETY: per contract.
        unsafe {
            *ptr.add(1 + 2 * i) = key;
            *ptr.add(2 + 2 * i) = value;
        }
    }

    /// Binary search over the sorted keys.
    ///
    /// # Safety
    ///
    /// `ptr` must point to a live snapshot.
    unsafe fn position(ptr: *const u64, key: u64) -> Result<usize, usize> {
        // SAFETY: per contract; indices stay below len.
        unsafe {
            let len = Self::len(ptr);
            let mut lo = 0usize;
            let mut hi = len;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let (k, _) = Self::pair(ptr, mid);
                if k < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo < len && Self::pair(ptr, lo).0 == key {
                Ok(lo)
            } else {
                Err(lo)
            }
        }
    }
}

/// The copy-on-write array list (lock-based, global lock).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::list::CopyList;
///
/// let list = CopyList::new();
/// assert!(list.insert(3, 33));
/// assert_eq!(list.search(3), Some(33));
/// assert_eq!(list.remove(3), Some(33));
/// ```
pub struct CopyList {
    current: AtomicPtr<u64>,
    lock: TicketLock,
    ascy3: bool,
}

// SAFETY: the snapshot pointer is atomic; snapshots are immutable once
// published and reclaimed only after an SSMEM grace period; updates are
// serialized by the global lock.
unsafe impl Send for CopyList {}
// SAFETY: see above.
unsafe impl Sync for CopyList {}

impl CopyList {
    /// Creates an empty list with ASCY3 enabled.
    pub fn new() -> Self {
        Self::with_ascy3(true)
    }

    /// Creates the `copy-no` variant of Figure 6.
    pub fn without_ascy3() -> Self {
        Self::with_ascy3(false)
    }

    fn with_ascy3(ascy3: bool) -> Self {
        let empty = Snapshot::alloc(0);
        Self {
            current: AtomicPtr::new(empty),
            lock: TicketLock::new(),
            ascy3,
        }
    }
}

impl ConcurrentMap for CopyList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let snap = self.current.load(Ordering::Acquire);
        stats::record_operation();
        // SAFETY: the guard keeps the snapshot alive even if an update
        // replaces and retires it concurrently.
        unsafe {
            match Snapshot::position(snap, key) {
                Ok(i) => Some(Snapshot::pair(snap, i).1),
                Err(_) => None,
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        if self.ascy3 && self.search_inner(key).is_some() {
            stats::record_operation();
            return false;
        }
        self.lock.lock();
        stats::record_lock();
        let snap = self.current.load(Ordering::Acquire);
        // SAFETY: updates are serialized by the global lock; the old snapshot
        // is retired only after the new one is published.
        let result = unsafe {
            match Snapshot::position(snap, key) {
                Ok(_) => false,
                Err(pos) => {
                    let len = Snapshot::len(snap);
                    let new_snap = Snapshot::alloc(len + 1);
                    for i in 0..pos {
                        let (k, v) = Snapshot::pair(snap, i);
                        Snapshot::set_pair(new_snap, i, k, v);
                    }
                    Snapshot::set_pair(new_snap, pos, key, value);
                    for i in pos..len {
                        let (k, v) = Snapshot::pair(snap, i);
                        Snapshot::set_pair(new_snap, i + 1, k, v);
                    }
                    // The whole copy is traffic on shared memory once the
                    // pointer is published.
                    stats::record_stores(2 * (len as u64 + 1) + 1);
                    self.current.store(new_snap, Ordering::Release);
                    ssmem::retire_raw(snap as *mut u8, Snapshot::layout(len));
                    true
                }
            }
        };
        self.lock.unlock();
        stats::record_operation();
        result
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        if self.ascy3 && self.search_inner(key).is_none() {
            stats::record_operation();
            return None;
        }
        self.lock.lock();
        stats::record_lock();
        let snap = self.current.load(Ordering::Acquire);
        // SAFETY: as in `insert`.
        let result = unsafe {
            match Snapshot::position(snap, key) {
                Err(_) => None,
                Ok(pos) => {
                    let len = Snapshot::len(snap);
                    let value = Snapshot::pair(snap, pos).1;
                    let new_snap = Snapshot::alloc(len - 1);
                    for i in 0..pos {
                        let (k, v) = Snapshot::pair(snap, i);
                        Snapshot::set_pair(new_snap, i, k, v);
                    }
                    for i in pos + 1..len {
                        let (k, v) = Snapshot::pair(snap, i);
                        Snapshot::set_pair(new_snap, i - 1, k, v);
                    }
                    stats::record_stores(2 * (len as u64 - 1) + 1);
                    self.current.store(new_snap, Ordering::Release);
                    ssmem::retire_raw(snap as *mut u8, Snapshot::layout(len));
                    Some(value)
                }
            }
        };
        self.lock.unlock();
        stats::record_operation();
        result
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let snap = self.current.load(Ordering::Acquire);
        // SAFETY: guard keeps the snapshot alive.
        unsafe { Snapshot::len(snap) }
    }
}

impl CopyList {
    /// Read-only lookup used by the ASCY3 pre-check (caller holds a guard).
    fn search_inner(&self, key: u64) -> Option<u64> {
        let snap = self.current.load(Ordering::Acquire);
        // SAFETY: caller holds an SSMEM guard.
        unsafe {
            match Snapshot::position(snap, key) {
                Ok(i) => Some(Snapshot::pair(snap, i).1),
                Err(_) => None,
            }
        }
    }
}

impl RangeWalk for CopyList {
    /// Walks one published snapshot: binary-search to the first key `>= lo`,
    /// then emit the (already sorted, already unique) tail. The snapshot is
    /// immutable, so this is the one backing whose scans *are* atomic.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        let snap = self.current.load(Ordering::Acquire);
        // SAFETY: the guard keeps the snapshot alive even if an update
        // replaces and retires it concurrently; indices stay below len.
        unsafe {
            let len = Snapshot::len(snap);
            let start = match Snapshot::position(snap, lo) {
                Ok(i) | Err(i) => i,
            };
            stats::record_traversal((len - start) as u64);
            for i in start..len {
                let (k, v) = Snapshot::pair(snap, i);
                if !visit(k, v) {
                    return;
                }
            }
        }
    }
}

impl_ordered_map!(CopyList);

impl Default for CopyList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CopyList {
    fn drop(&mut self) {
        let snap = self.current.load(Ordering::Relaxed);
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access; the current snapshot is owned by us.
        unsafe {
            let len = Snapshot::len(snap);
            ssmem::dealloc_raw_immediate(snap as *mut u8, Snapshot::layout(len));
        }
    }
}

impl std::fmt::Debug for CopyList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CopyList")
            .field("ascy3", &self.ascy3)
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let l = CopyList::new();
        assert_eq!(l.size(), 0);
        for k in [10u64, 5, 20, 15] {
            assert!(l.insert(k, k * 2));
        }
        assert!(!l.insert(10, 0));
        assert_eq!(l.size(), 4);
        assert_eq!(l.search(15), Some(30));
        assert_eq!(l.remove(5), Some(10));
        assert_eq!(l.remove(5), None);
        assert_eq!(l.size(), 3);
    }

    #[test]
    fn keeps_array_sorted() {
        let l = CopyList::new();
        for k in (1..=32u64).rev() {
            assert!(l.insert(k, k));
        }
        for k in 1..=32u64 {
            assert_eq!(l.search(k), Some(k));
        }
        for k in (1..=32u64).step_by(3) {
            assert_eq!(l.remove(k), Some(k));
        }
        assert_eq!(l.size(), 32 - 32usize.div_ceil(3));
    }

    #[test]
    fn non_ascy3_variant_behaves_identically() {
        let l = CopyList::without_ascy3();
        assert!(l.insert(1, 1));
        assert!(!l.insert(1, 2));
        assert_eq!(l.remove(2), None);
        assert_eq!(l.remove(1), Some(1));
    }
}
