//! Concurrent sorted linked lists (Table 1, "linked list" rows).
//!
//! | Name | Type | Algorithm |
//! |------|------|-----------|
//! | [`AsyncList`] | seq | Sequential list, used as the incorrect *asynchronized* baseline. |
//! | [`CouplingList`] | flb | Hand-over-hand (lock coupling) list. |
//! | [`PughList`] | lb | Pugh's optimistic list with per-node locks and pointer reversal on removal. |
//! | [`LazyList`] | lb | Heller et al. lazy list: logical mark then physical unlink. |
//! | [`CopyList`] | lb | Copy-on-write array list behind a global lock. |
//! | [`HarrisList`] | lf | Harris's lock-free list (marked pointers, cleanup during search). |
//! | [`MichaelList`] | lf | Michael's refactoring of Harris for easier memory management. |
//! | [`HarrisOptList`] | lf | Harris re-engineered with ASCY1–2: wait-free search, non-restarting parse. |
//!
//! All lists store `u64 → u64` pairs, keep elements sorted by key, and use
//! head/tail sentinel nodes (keys `0` and `u64::MAX`), so user keys must lie
//! in `[KEY_MIN, KEY_MAX]`.
//!
//! Memory reclamation goes through [`ascylib_ssmem`]: removed nodes are
//! *retired* and reused only after a grace period, which is what allows the
//! ASCY1-compliant searches to traverse nodes without any stores.

mod copy;
mod coupling;
mod harris;
mod harris_opt;
mod lazy;
mod michael;
mod pugh;
mod seq;

pub use copy::CopyList;
pub use coupling::CouplingList;
pub use harris::HarrisList;
pub use harris_opt::HarrisOptList;
pub use lazy::LazyList;
pub use michael::MichaelList;
pub use pugh::PughList;
pub use seq::AsyncList;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn lazy_list_full_suite() {
        testing::full_suite(LazyList::new);
    }

    #[test]
    fn lazy_list_no_ascy3_full_suite() {
        testing::full_suite(LazyList::without_ascy3);
    }

    #[test]
    fn pugh_list_full_suite() {
        testing::full_suite(PughList::new);
    }

    #[test]
    fn coupling_list_full_suite() {
        testing::full_suite(CouplingList::new);
    }

    #[test]
    fn copy_list_full_suite() {
        testing::full_suite(CopyList::new);
    }

    #[test]
    fn harris_list_full_suite() {
        testing::full_suite(HarrisList::new);
    }

    #[test]
    fn michael_list_full_suite() {
        testing::full_suite(MichaelList::new);
    }

    #[test]
    fn harris_opt_list_full_suite() {
        testing::full_suite(HarrisOptList::new);
    }

    #[test]
    fn all_lists_ordered_model_check() {
        // Every list is an OrderedMap: range operations must agree with the
        // BTreeMap model (single-threaded differential check).
        testing::ordered_model_check(LazyList::new, 1_500);
        testing::ordered_model_check(PughList::new, 1_500);
        testing::ordered_model_check(CouplingList::new, 1_500);
        testing::ordered_model_check(CopyList::new, 1_500);
        testing::ordered_model_check(HarrisList::new, 1_500);
        testing::ordered_model_check(MichaelList::new, 1_500);
        testing::ordered_model_check(HarrisOptList::new, 1_500);
        testing::ordered_model_check(AsyncList::new, 1_500);
    }

    #[test]
    fn async_list_sequential_only_suite() {
        // The asynchronized list is only sequentially correct; run the
        // sequential battery.
        testing::sequential_suite(AsyncList::new);
        testing::model_check(AsyncList::new, 2_000);
    }
}
