//! Harris's list re-engineered with ASCY1–2 (`harris-opt` in the paper).
//!
//! The paper applies **ASCY1** to Harris's list by removing the physical
//! unlinking (and the associated restarts) from the search operation: a
//! search simply ignores logically deleted nodes, performs no stores, never
//! waits and never restarts. The parse phase of updates follows **ASCY2**:
//! it may attempt clean-up stores (unlinking a marked node it walks over)
//! but never restarts when such a clean-up CAS fails. Unsuccessful updates
//! follow **ASCY3** and fail without a single store. §5/Figure 4 of the
//! paper measures 10–30% lower search latencies and a tighter latency
//! distribution compared to `harris`/`michael`.

use std::sync::atomic::{AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::marked::{tag, MarkedPtr};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    next: MarkedPtr<Node>,
}

fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        next: MarkedPtr::new(next, tag::CLEAN),
    })
}

/// The ASCY-compliant variant of Harris's lock-free list.
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::list::HarrisOptList;
///
/// let list = HarrisOptList::new();
/// assert!(list.insert(7, 70));
/// assert_eq!(list.search(7), Some(70));
/// assert_eq!(list.remove(7), Some(70));
/// assert_eq!(list.search(7), None);
/// ```
pub struct HarrisOptList {
    head: *mut Node,
    tail: *mut Node,
}

// SAFETY: shared node state is atomic; victims are retired only by the
// thread whose unlink CAS succeeded; traversals run under SSMEM guards.
unsafe impl Send for HarrisOptList {}
// SAFETY: see above.
unsafe impl Sync for HarrisOptList {}

impl HarrisOptList {
    /// Creates an empty list.
    pub fn new() -> Self {
        let tail = new_node(u64::MAX, 0, std::ptr::null_mut());
        let head = new_node(0, 0, tail);
        Self { head, tail }
    }

    /// ASCY1-compliant wait-free traversal: no stores, no retries.
    ///
    /// Caller must hold an SSMEM guard.
    #[inline]
    fn traverse(&self, key: u64) -> (*mut Node, *mut Node) {
        // SAFETY: caller holds a guard.
        unsafe {
            let mut pred = self.head;
            let mut curr = (*pred).next.load(Ordering::Acquire).0;
            let mut traversed = 0u64;
            while (*curr).key < key {
                pred = curr;
                curr = (*curr).next.load(Ordering::Acquire).0;
                traversed += 1;
            }
            stats::record_traversal(traversed);
            (pred, curr)
        }
    }

    /// ASCY2-compliant parse for updates: identical to the search traversal,
    /// except that when it walks over a logically deleted node it makes a
    /// *single* attempt to unlink it (a clean-up store) and continues
    /// regardless of the outcome — it never restarts.
    ///
    /// Caller must hold an SSMEM guard.
    fn parse(&self, key: u64) -> (*mut Node, *mut Node) {
        // SAFETY: caller holds a guard; clean-up CASes only unlink nodes that
        // are already logically deleted, and the victim is retired only when
        // our CAS succeeded.
        unsafe {
            let mut pred = self.head;
            let mut curr = (*pred).next.load(Ordering::Acquire).0;
            let mut traversed = 0u64;
            while (*curr).key < key || (*curr).next.load(Ordering::Acquire).1 != tag::CLEAN {
                let (succ, mark) = (*curr).next.load(Ordering::Acquire);
                if mark != tag::CLEAN {
                    // One shot clean-up; never restart on failure (ASCY2).
                    let ok = (*pred)
                        .next
                        .compare_exchange(
                            curr,
                            tag::CLEAN,
                            succ,
                            tag::CLEAN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok();
                    stats::record_atomic(ok);
                    if ok {
                        ssmem::retire(curr);
                        curr = succ;
                        continue;
                    }
                    // Could not unlink; simply step over it.
                    pred = curr;
                    curr = succ;
                } else {
                    pred = curr;
                    curr = succ;
                }
                traversed += 1;
            }
            stats::record_traversal(traversed);
            (pred, curr)
        }
    }
}

impl ConcurrentMap for HarrisOptList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let (_, curr) = self.traverse(key);
        stats::record_operation();
        // SAFETY: guard protects the node.
        unsafe {
            if (*curr).key == key && (*curr).next.load(Ordering::Acquire).1 == tag::CLEAN {
                Some((*curr).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let _guard = ssmem::protect();
        let mut node: *mut Node = std::ptr::null_mut();
        loop {
            let (pred, curr) = self.parse(key);
            // SAFETY: guard protects pred/curr.
            unsafe {
                if (*curr).key == key {
                    // ASCY3: read-only failure.
                    if !node.is_null() {
                        ssmem::dealloc_immediate(node);
                    }
                    stats::record_operation();
                    return false;
                }
                if node.is_null() {
                    node = new_node(key, value, curr);
                } else {
                    // Relaxed: `node` is still private (a CAS loser being
                    // retried); the successful CAS below publishes it.
                    (*node).next.store(curr, tag::CLEAN, Ordering::Relaxed);
                }
                let ok = (*pred)
                    .next
                    .compare_exchange(
                        curr,
                        tag::CLEAN,
                        node,
                        tag::CLEAN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(ok);
                if ok {
                    stats::record_operation();
                    return true;
                }
                stats::record_restart();
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let _guard = ssmem::protect();
        loop {
            let (pred, curr) = self.parse(key);
            // SAFETY: guard protects pred/curr; the victim is retired only by
            // the thread whose unlink CAS succeeds (here or in a later
            // parse).
            unsafe {
                if (*curr).key != key {
                    // ASCY3: read-only failure.
                    stats::record_operation();
                    return None;
                }
                let (succ, m) = (*curr).next.load(Ordering::Acquire);
                if m != tag::CLEAN {
                    // Concurrently deleted; treat as absent (it was logically
                    // removed before our linearization point).
                    stats::record_operation();
                    return None;
                }
                let value = (*curr).value.load(Ordering::Acquire);
                let marked = (*curr)
                    .next
                    .compare_exchange(
                        succ,
                        tag::CLEAN,
                        succ,
                        tag::MARK,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(marked);
                if !marked {
                    stats::record_restart();
                    continue;
                }
                // Single unlink attempt (ASCY4: one clean-up store); deferred
                // to later parses if it fails.
                let unlinked = (*pred)
                    .next
                    .compare_exchange(
                        curr,
                        tag::CLEAN,
                        succ,
                        tag::CLEAN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                stats::record_atomic(unlinked);
                if unlinked {
                    ssmem::retire(curr);
                }
                stats::record_operation();
                return Some(value);
            }
        }
    }

    fn size(&self) -> usize {
        let _guard = ssmem::protect();
        let mut count = 0;
        // SAFETY: guard protects the traversal.
        unsafe {
            let mut curr = (*self.head).next.load(Ordering::Acquire).0;
            while curr != self.tail {
                let (next, m) = (*curr).next.load(Ordering::Acquire);
                if m == tag::CLEAN {
                    count += 1;
                }
                curr = next;
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn chain_live(&self) -> bool {
        self.next.load(Ordering::Acquire).1 == tag::CLEAN
    }

    fn chain_next(&self) -> *mut Self {
        self.next.load(Ordering::Acquire).0
    }
}

impl RangeWalk for HarrisOptList {
    /// The natural extension of the ASCY1 search: one wait-free pass over
    /// the chain, ignoring logically deleted nodes.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every node reached through `next`.
        unsafe { walk_chain(self.head, lo, visit) }
    }
}

impl_ordered_map!(HarrisOptList);

impl Default for HarrisOptList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for HarrisOptList {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access.
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = (*curr).next.load(Ordering::Relaxed).0;
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

impl std::fmt::Debug for HarrisOptList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarrisOptList").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let l = HarrisOptList::new();
        assert!(l.insert(9, 90));
        assert!(l.insert(8, 80));
        assert!(!l.insert(9, 91));
        assert_eq!(l.search(8), Some(80));
        assert_eq!(l.remove(9), Some(90));
        assert_eq!(l.search(9), None);
        assert_eq!(l.size(), 1);
    }

    #[test]
    fn search_after_logical_delete_sees_absence() {
        let l = HarrisOptList::new();
        for k in 1..=64u64 {
            assert!(l.insert(k, k));
        }
        for k in (1..=64u64).step_by(2) {
            assert_eq!(l.remove(k), Some(k));
            assert_eq!(l.search(k), None, "logically deleted {k} must be invisible");
        }
        assert_eq!(l.size(), 32);
    }
}
