//! The sequential ("asynchronized") linked list.
//!
//! This is the paper's `async` linked list: a plain sequential sorted list
//! that is deliberately shared between threads *without synchronization* to
//! obtain a practical upper bound on the performance of any correct
//! concurrent list (§1, §4 "Dissecting asynchronized executions").
//!
//! To keep the Rust implementation free of undefined behaviour while
//! preserving the "no synchronization" property, all shared fields are plain
//! atomics accessed with `Relaxed` ordering: on the paper's platforms these
//! compile to ordinary loads and stores, so the structure performs exactly
//! the stores a sequential list performs — and, like the paper's version, it
//! is **not linearizable** and may lose elements under concurrent updates.
//! Garbage collection is disabled (removed nodes are not retired), exactly
//! as the paper does for the asynchronized runs.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    next: AtomicPtr<Node>,
}

fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        next: AtomicPtr::new(next),
    })
}

/// The asynchronized (sequential) sorted linked list.
///
/// See the module documentation: this structure is only sequentially
/// correct; under concurrent updates it is used purely as a performance
/// upper bound.
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::list::AsyncList;
///
/// let list = AsyncList::new();
/// assert!(list.insert(5, 50));
/// assert!(!list.insert(5, 51));
/// assert_eq!(list.search(5), Some(50));
/// assert_eq!(list.remove(5), Some(50));
/// ```
pub struct AsyncList {
    head: *mut Node,
}

// SAFETY: all shared fields inside nodes are atomics; the structure contains
// no thread-unsafe interior mutability. (Its *semantics* under concurrency
// are deliberately weak, but its memory accesses are well-defined.)
unsafe impl Send for AsyncList {}
// SAFETY: see above.
unsafe impl Sync for AsyncList {}

impl AsyncList {
    /// Creates an empty list.
    pub fn new() -> Self {
        let tail = new_node(u64::MAX, 0, std::ptr::null_mut());
        let head = new_node(0, 0, tail);
        Self { head }
    }

    #[inline]
    fn find(&self, key: u64) -> (*mut Node, *mut Node) {
        let mut traversed = 0u64;
        // SAFETY: head and tail sentinels are never removed; interior nodes
        // are never reclaimed during the structure's lifetime (GC disabled).
        unsafe {
            let mut pred = self.head;
            let mut curr = (*pred).next.load(Ordering::Relaxed);
            while (*curr).key < key {
                pred = curr;
                curr = (*curr).next.load(Ordering::Relaxed);
                traversed += 1;
            }
            stats::record_traversal(traversed);
            (pred, curr)
        }
    }
}

impl ConcurrentMap for AsyncList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let (_, curr) = self.find(key);
        stats::record_operation();
        // SAFETY: nodes are never reclaimed while the list is alive.
        unsafe {
            if (*curr).key == key {
                Some((*curr).value.load(Ordering::Relaxed))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let (pred, curr) = self.find(key);
        stats::record_operation();
        // SAFETY: as above; the new node is fully initialized before being
        // linked.
        unsafe {
            if (*curr).key == key {
                return false;
            }
            let node = new_node(key, value, curr);
            (*pred).next.store(node, Ordering::Relaxed);
            stats::record_store();
            true
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let (pred, curr) = self.find(key);
        stats::record_operation();
        // SAFETY: as above. The removed node is intentionally *not* retired
        // (asynchronized executions disable GC); it is leaked until the
        // structure is dropped, and possibly beyond if it became unreachable,
        // mirroring the paper's methodology.
        unsafe {
            if (*curr).key != key {
                return None;
            }
            let value = (*curr).value.load(Ordering::Relaxed);
            (*pred).next.store((*curr).next.load(Ordering::Relaxed), Ordering::Relaxed);
            stats::record_store();
            Some(value)
        }
    }

    fn size(&self) -> usize {
        let mut count = 0;
        // SAFETY: nodes reachable from head are alive for the structure's
        // lifetime.
        unsafe {
            let mut curr = (*self.head).next.load(Ordering::Relaxed);
            while (*curr).key != u64::MAX {
                count += 1;
                curr = (*curr).next.load(Ordering::Relaxed);
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        // Relaxed everywhere: the asynchronized baseline deliberately
        // performs exactly a sequential list's accesses.
        self.value.load(Ordering::Relaxed)
    }

    fn chain_live(&self) -> bool {
        true
    }

    fn chain_next(&self) -> *mut Self {
        self.next.load(Ordering::Relaxed)
    }
}

impl RangeWalk for AsyncList {
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        // SAFETY: nodes are never reclaimed while the structure is alive
        // (GC disabled for asynchronized baselines), so no guard is needed.
        unsafe { walk_chain(self.head, lo, visit) }
    }
}

impl_ordered_map!(AsyncList);

impl Default for AsyncList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AsyncList {
    fn drop(&mut self) {
        // SAFETY: `&mut self` gives exclusive access; every reachable node is
        // freed exactly once. (Nodes removed during the structure's lifetime
        // are unreachable here and were intentionally leaked.)
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = (*curr).next.load(Ordering::Relaxed);
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

impl std::fmt::Debug for AsyncList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncList").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_list_has_no_elements() {
        let l = AsyncList::new();
        assert_eq!(l.size(), 0);
        assert!(l.is_empty());
        assert_eq!(l.search(1), None);
        assert_eq!(l.remove(1), None);
    }

    #[test]
    fn keeps_elements_sorted_and_unique() {
        let l = AsyncList::new();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(l.insert(k, k * 10));
        }
        assert!(!l.insert(5, 99), "duplicate insert must fail");
        assert_eq!(l.size(), 5);
        for k in [1u64, 3, 5, 7, 9] {
            assert_eq!(l.search(k), Some(k * 10));
        }
        assert_eq!(l.remove(3), Some(30));
        assert_eq!(l.search(3), None);
        assert_eq!(l.size(), 4);
    }

    #[test]
    fn removed_key_can_be_reinserted() {
        let l = AsyncList::new();
        assert!(l.insert(2, 20));
        assert_eq!(l.remove(2), Some(20));
        assert!(l.insert(2, 21));
        assert_eq!(l.search(2), Some(21));
    }
}
