//! The lock-coupling ("hand-over-hand") linked list.
//!
//! The fully lock-based baseline of Table 1: every operation acquires the
//! lock of the next node before releasing the previous one, so even searches
//! perform one lock acquisition (two cache-line transfers) per traversed
//! node. It violates every ASCY pattern and, as the paper's Figures 2–4
//! show, it is the least scalable list by a wide margin — it is included as
//! the canonical negative example.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ascylib_ssmem as ssmem;
use ascylib_sync::TicketLock;

use crate::api::{debug_check_key, ConcurrentMap};
use crate::ordered::{impl_ordered_map, walk_chain, ChainNode, RangeWalk};
use crate::stats;

#[repr(C)]
struct Node {
    key: u64,
    value: AtomicU64,
    lock: TicketLock,
    next: AtomicPtr<Node>,
}

fn new_node(key: u64, value: u64, next: *mut Node) -> *mut Node {
    ssmem::alloc(Node {
        key,
        value: AtomicU64::new(value),
        lock: TicketLock::new(),
        next: AtomicPtr::new(next),
    })
}

/// The hand-over-hand (lock-coupling) linked list (fully lock-based).
///
/// # Example
///
/// ```
/// use ascylib::api::ConcurrentMap;
/// use ascylib::list::CouplingList;
///
/// let list = CouplingList::new();
/// assert!(list.insert(1, 11));
/// assert_eq!(list.remove(1), Some(11));
/// ```
pub struct CouplingList {
    head: *mut Node,
}

// SAFETY: every access to a node happens while holding its predecessor's (or
// its own) lock; a node is unlinked and retired only while both locks are
// held, at which point no other thread can reach it.
unsafe impl Send for CouplingList {}
// SAFETY: see above.
unsafe impl Sync for CouplingList {}

impl CouplingList {
    /// Creates an empty list.
    pub fn new() -> Self {
        let tail = new_node(u64::MAX, 0, std::ptr::null_mut());
        let head = new_node(0, 0, tail);
        Self { head }
    }

    /// Traverses hand-over-hand until `curr.key >= key`. Returns `(pred,
    /// curr)` with **both locks held**.
    #[inline]
    fn find_locked(&self, key: u64) -> (*mut Node, *mut Node) {
        let mut traversed = 0u64;
        // SAFETY: locks are acquired hand-over-hand starting from the head
        // sentinel, so every dereferenced node is protected by a lock we (or
        // our predecessor chain) hold and cannot be unlinked concurrently.
        unsafe {
            let mut pred = self.head;
            (*pred).lock.lock();
            stats::record_lock();
            let mut curr = (*pred).next.load(Ordering::Acquire);
            (*curr).lock.lock();
            stats::record_lock();
            while (*curr).key < key {
                (*pred).lock.unlock();
                pred = curr;
                curr = (*curr).next.load(Ordering::Acquire);
                (*curr).lock.lock();
                stats::record_lock();
                traversed += 1;
            }
            stats::record_traversal(traversed);
            (pred, curr)
        }
    }

    /// Releases the two locks returned by [`Self::find_locked`].
    ///
    /// # Safety
    ///
    /// `pred` and `curr` must be the node pair returned by `find_locked`,
    /// with both locks still held by the caller.
    #[inline]
    unsafe fn unlock_pair(pred: *mut Node, curr: *mut Node) {
        // SAFETY: per the function contract.
        unsafe {
            (*curr).lock.unlock();
            (*pred).lock.unlock();
        }
    }
}

impl ConcurrentMap for CouplingList {
    fn search(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let (pred, curr) = self.find_locked(key);
        stats::record_operation();
        // SAFETY: both locks are held.
        unsafe {
            let result = if (*curr).key == key {
                Some((*curr).value.load(Ordering::Acquire))
            } else {
                None
            };
            Self::unlock_pair(pred, curr);
            result
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        debug_check_key(key);
        let (pred, curr) = self.find_locked(key);
        stats::record_operation();
        // SAFETY: both locks are held; the new node is initialized before
        // being linked.
        unsafe {
            let result = if (*curr).key == key {
                false
            } else {
                let node = new_node(key, value, curr);
                (*pred).next.store(node, Ordering::Release);
                stats::record_store();
                true
            };
            Self::unlock_pair(pred, curr);
            result
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        debug_check_key(key);
        let (pred, curr) = self.find_locked(key);
        stats::record_operation();
        // SAFETY: both locks are held. After the unlink no other thread can
        // reach `curr` (reaching it would require holding `pred`'s lock), so
        // retiring it is safe.
        unsafe {
            if (*curr).key != key {
                Self::unlock_pair(pred, curr);
                return None;
            }
            let value = (*curr).value.load(Ordering::Acquire);
            (*pred).next.store((*curr).next.load(Ordering::Acquire), Ordering::Release);
            stats::record_store();
            Self::unlock_pair(pred, curr);
            ssmem::retire(curr);
            Some(value)
        }
    }

    fn size(&self) -> usize {
        let mut count = 0;
        // SAFETY: size is a diagnostic traversal; nodes cannot be reclaimed
        // under our feet because unlinked nodes go through SSMEM's grace
        // period and this traversal holds a guard.
        let _guard = ssmem::protect();
        unsafe {
            let mut curr = (*self.head).next.load(Ordering::Acquire);
            while (*curr).key != u64::MAX {
                count += 1;
                curr = (*curr).next.load(Ordering::Acquire);
            }
        }
        count
    }
}

impl ChainNode for Node {
    fn chain_key(&self) -> u64 {
        self.key
    }

    fn chain_value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    fn chain_live(&self) -> bool {
        // Removal unlinks immediately (no logical-delete flag), so every
        // reachable node is present.
        true
    }

    fn chain_next(&self) -> *mut Self {
        self.next.load(Ordering::Acquire)
    }
}

impl RangeWalk for CouplingList {
    /// Lock-free diagnostic-style traversal (same discipline as `size`): a
    /// removed node we happen to stand on still points at its old successor
    /// and is kept alive by the guard, so the walk always finds its way
    /// forward without taking the hand-over-hand locks.
    fn walk(&self, lo: u64, visit: &mut dyn FnMut(u64, u64) -> bool) {
        let _guard = ssmem::protect();
        // SAFETY: the guard protects every node reached through `next`.
        unsafe { walk_chain(self.head, lo, visit) }
    }
}

impl_ordered_map!(CouplingList);

impl Default for CouplingList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CouplingList {
    fn drop(&mut self) {
        // Relaxed loads: `&mut self` proves no concurrent thread exists.
        // SAFETY: exclusive access.
        unsafe {
            let mut curr = self.head;
            while !curr.is_null() {
                let next = (*curr).next.load(Ordering::Relaxed);
                ssmem::dealloc_immediate(curr);
                curr = next;
            }
        }
    }
}

impl std::fmt::Debug for CouplingList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CouplingList").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let l = CouplingList::new();
        assert!(l.insert(8, 80));
        assert!(l.insert(4, 40));
        assert!(!l.insert(8, 81));
        assert_eq!(l.search(4), Some(40));
        assert_eq!(l.search(5), None);
        assert_eq!(l.remove(8), Some(80));
        assert_eq!(l.size(), 1);
    }
}
