//! Reusable test batteries for `ConcurrentMap` implementations.
//!
//! These helpers are used by the unit tests of every algorithm module and by
//! the workspace integration tests. They are `doc(hidden)`: they are not part
//! of the supported public API.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::api::{ConcurrentMap, KEY_MAX, KEY_MIN};
use crate::ordered::OrderedMap;

/// A tiny deterministic RNG (xorshift64*) so the test battery does not need
/// external dependencies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a new generator from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[1, bound]`.
    pub fn key(&mut self, bound: u64) -> u64 {
        1 + self.next_u64() % bound
    }
}

/// Basic single-threaded semantics: inserts, duplicate rejection, search,
/// removal, reinsertion, size accounting.
pub fn sequential_suite<M, F>(ctor: F)
where
    M: ConcurrentMap,
    F: Fn() -> M,
{
    let m = ctor();
    assert_eq!(m.size(), 0, "new structure must be empty");
    assert!(m.is_empty());
    assert_eq!(m.search(7), None);
    assert_eq!(m.remove(7), None);

    // Insert a batch of keys in scrambled order.
    let keys = [13u64, 2, 40, 25, 7, 31, 19, 4, 28, 10];
    for &k in &keys {
        assert!(m.insert(k, k * 100), "first insert of {k} must succeed");
        assert!(!m.insert(k, k * 100 + 1), "duplicate insert of {k} must fail");
    }
    assert_eq!(m.size(), keys.len());
    for &k in &keys {
        assert_eq!(m.search(k), Some(k * 100), "search({k})");
        assert!(m.contains(k));
    }
    assert_eq!(m.search(1), None);
    assert_eq!(m.search(1000), None);

    // Remove half, verify, reinsert.
    for &k in keys.iter().step_by(2) {
        assert_eq!(m.remove(k), Some(k * 100), "remove({k})");
        assert_eq!(m.remove(k), None, "double remove({k}) must fail");
        assert_eq!(m.search(k), None);
    }
    assert_eq!(m.size(), keys.len() - keys.len().div_ceil(2));
    for &k in keys.iter().step_by(2) {
        assert!(m.insert(k, k + 1), "reinsert of {k} must succeed");
        assert_eq!(m.search(k), Some(k + 1));
    }
    assert_eq!(m.size(), keys.len());

    // Drain everything.
    for &k in &keys {
        assert!(m.remove(k).is_some());
    }
    assert_eq!(m.size(), 0);
}

/// Randomized differential test against `BTreeMap` (single-threaded).
pub fn model_check<M, F>(ctor: F, operations: usize)
where
    M: ConcurrentMap,
    F: Fn() -> M,
{
    let m = ctor();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = TestRng::new(0xA5CF_11B5);
    let key_range = 128;
    for i in 0..operations {
        let key = rng.key(key_range);
        match rng.next_u64() % 3 {
            0 => {
                let expected = !model.contains_key(&key);
                let value = i as u64;
                assert_eq!(
                    m.insert(key, value),
                    expected,
                    "insert({key}) disagreed with model at step {i}"
                );
                model.entry(key).or_insert(value);
            }
            1 => {
                let expected = model.remove(&key);
                assert_eq!(
                    m.remove(key),
                    expected,
                    "remove({key}) disagreed with model at step {i}"
                );
            }
            _ => {
                assert_eq!(
                    m.search(key),
                    model.get(&key).copied(),
                    "search({key}) disagreed with model at step {i}"
                );
            }
        }
        if i % 257 == 0 {
            assert_eq!(m.size(), model.len(), "size disagreed with model at step {i}");
        }
    }
    assert_eq!(m.size(), model.len());
    for (&k, &v) in &model {
        assert_eq!(m.search(k), Some(v));
    }
}

/// Concurrent determinism check: each thread owns a disjoint key range, so
/// the final contents are known exactly regardless of interleavings.
pub fn partitioned_concurrency<M, F>(ctor: F, threads: usize, keys_per_thread: u64)
where
    M: ConcurrentMap + 'static,
    F: Fn() -> M,
{
    let m = Arc::new(ctor());
    let mut handles = Vec::new();
    for t in 0..threads {
        let m = Arc::clone(&m);
        handles.push(std::thread::spawn(move || {
            let base = t as u64 * keys_per_thread + 1;
            // Insert everything, remove the odd offsets, reinsert a third.
            for k in base..base + keys_per_thread {
                assert!(m.insert(k, k), "partitioned insert({k})");
            }
            for k in (base..base + keys_per_thread).filter(|k| (k - base) % 2 == 1) {
                assert_eq!(m.remove(k), Some(k), "partitioned remove({k})");
            }
            for k in (base..base + keys_per_thread).filter(|k| (k - base) % 6 == 1) {
                assert!(m.insert(k, k + 7), "partitioned reinsert({k})");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Verify the deterministic final state.
    let mut expected_size = 0usize;
    for t in 0..threads {
        let base = t as u64 * keys_per_thread + 1;
        for k in base..base + keys_per_thread {
            let off = k - base;
            let expected = if off % 2 == 0 {
                Some(k)
            } else if off % 6 == 1 {
                Some(k + 7)
            } else {
                None
            };
            assert_eq!(m.search(k), expected, "final state of key {k}");
            if expected.is_some() {
                expected_size += 1;
            }
        }
    }
    assert_eq!(m.size(), expected_size);
}

/// Concurrent mixed stress: random operations on a shared key range, with a
/// global balance check (successful inserts − successful removes = final
/// size).
pub fn balance_stress<M, F>(ctor: F, threads: usize, ops_per_thread: usize, key_range: u64)
where
    M: ConcurrentMap + 'static,
    F: Fn() -> M,
{
    let m = Arc::new(ctor());
    let inserts = Arc::new(AtomicU64::new(0));
    let removes = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..threads {
        let m = Arc::clone(&m);
        let inserts = Arc::clone(&inserts);
        let removes = Arc::clone(&removes);
        handles.push(std::thread::spawn(move || {
            let mut rng = TestRng::new(0xDEAD_BEEF ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9));
            for i in 0..ops_per_thread {
                let key = rng.key(key_range);
                match rng.next_u64() % 10 {
                    0..=3 => {
                        if m.insert(key, key.wrapping_add(i as u64)) {
                            inserts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    4..=7 => {
                        if m.remove(key).is_some() {
                            removes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    _ => {
                        let _ = m.search(key);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Relaxed: the joins above synchronize all worker increments.
    let expected = inserts.load(Ordering::Relaxed) - removes.load(Ordering::Relaxed);
    assert_eq!(
        m.size() as u64,
        expected,
        "final size must equal successful inserts minus successful removes"
    );
    // Every remaining key must be findable.
    for key in 1..=key_range {
        if let Some(v) = m.search(key) {
            // The value was written by some insert of this key; just make
            // sure a subsequent remove agrees.
            assert_eq!(m.remove(key), Some(v));
        }
    }
    assert_eq!(m.size(), 0);
}

/// Differential driver for the [`OrderedMap`] surface against the `BTreeMap`
/// sequential model (single-threaded): decodes `(selector, a, b)` tuples
/// into point updates and `range_search`/`scan`/`scan_into` calls, requiring
/// exact agreement at every step, then checks a full-range sweep. Shared by
/// the RNG-driven [`ordered_model_check`] battery and the proptest suites in
/// the core and shard crates (so the scan contract is asserted in one
/// place).
///
/// Op decode: `selector % 6` → 0/1 insert, 2 remove, 3/4 `range_search`
/// over `[min(a,b), max(a,b)]`, 5 `scan(a, b % 16)`; keys are `1 + x %
/// key_space`.
pub fn ordered_ops_check<M: OrderedMap>(m: &M, ops: &[(u8, u64, u64)], key_space: u64) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut out = Vec::new();
    for (i, &(op, a, b)) in ops.iter().enumerate() {
        let key = 1 + a % key_space;
        match op % 6 {
            0 | 1 => {
                let expected = !model.contains_key(&key);
                let value = i as u64;
                assert_eq!(m.insert(key, value), expected, "insert({key}) at step {i}");
                model.entry(key).or_insert(value);
            }
            2 => {
                assert_eq!(m.remove(key), model.remove(&key), "remove({key}) at step {i}");
            }
            3 | 4 => {
                let other = 1 + b % key_space;
                let (lo, hi) = (key.min(other), key.max(other));
                out.clear();
                let count = m.range_search(lo, hi, &mut out);
                let want: Vec<(u64, u64)> =
                    model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(out, want, "range_search({lo}, {hi}) at step {i}");
                assert_eq!(count, want.len(), "range_search count at step {i}");
            }
            _ => {
                let n = (b % 16) as usize;
                let got = m.scan(key, n);
                let want: Vec<(u64, u64)> =
                    model.range(key..).take(n).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(got, want, "scan({key}, {n}) at step {i}");
                // The buffer-reusing variant must agree with `scan`.
                out.clear();
                assert_eq!(m.scan_into(key, n, &mut out), want.len());
                assert_eq!(out, want, "scan_into({key}, {n}) at step {i}");
            }
        }
    }
    // A quiescent full-range sweep is exactly the model's contents.
    let mut all = Vec::new();
    let count = m.range_search(KEY_MIN, KEY_MAX, &mut all);
    assert_eq!(count, model.len());
    assert_eq!(all, model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>());
    assert_eq!(m.size(), model.len());
}

/// Randomized differential test of the [`OrderedMap`] surface: generates a
/// deterministic op sequence and feeds it through [`ordered_ops_check`].
pub fn ordered_model_check<M, F>(ctor: F, operations: usize)
where
    M: OrderedMap,
    F: Fn() -> M,
{
    let mut rng = TestRng::new(0x0D0_5CA1);
    let ops: Vec<(u8, u64, u64)> = (0..operations)
        .map(|_| (rng.next_u64() as u8, rng.next_u64(), rng.next_u64()))
        .collect();
    ordered_ops_check(&ctor(), &ops, 192);
}

/// Concurrent scan-vs-mutation check for the documented (non-snapshot) scan
/// semantics. A set of *stable* keys is inserted up front and never touched;
/// writer threads churn a disjoint set of *volatile* keys while the main
/// thread scans. Every scan must return strictly-ascending in-bounds keys,
/// no phantoms (only keys from the two sets, with the values the writers
/// actually store), no resurrections (a third key set that was inserted and
/// removed *before* the scans start must never appear), and every stable key
/// in range.
pub fn scan_under_churn<M, F>(ctor: F, writers: usize, scans: usize)
where
    M: OrderedMap + 'static,
    F: Fn() -> M,
{
    const STABLE_STRIDE: u64 = 3;
    let span = 600u64;
    let m = Arc::new(ctor());
    // Stable keys: multiples of 3. Ghost keys (removed before any scan):
    // span..span+50.
    for k in (STABLE_STRIDE..=span).step_by(STABLE_STRIDE as usize) {
        assert!(m.insert(k, k * 2));
    }
    for k in span + 1..=span + 50 {
        assert!(m.insert(k, 1));
        assert_eq!(m.remove(k), Some(1));
    }
    let stop = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..writers {
        let m = Arc::clone(&m);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = TestRng::new(0x5CA2 ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9));
            while stop.load(Ordering::Relaxed) == 0 {
                // Volatile keys: non-multiples of 3 within the span.
                let key = rng.key(span);
                if key % STABLE_STRIDE == 0 {
                    continue;
                }
                if rng.next_u64() % 2 == 0 {
                    let _ = m.insert(key, key * 7);
                } else {
                    let _ = m.remove(key);
                }
            }
        }));
    }
    let mut rng = TestRng::new(0x5CA3);
    for i in 0..scans {
        // Bounds reach past `span` so the ghost range is actually scanned.
        let a = rng.key(span + 50);
        let b = rng.key(span + 50);
        let (lo, hi) = (a.min(b), a.max(b));
        let mut got = Vec::new();
        m.range_search(lo, hi, &mut got);
        let mut prev = None;
        for &(k, v) in &got {
            assert!(k >= lo && k <= hi, "scan {i}: key {k} outside [{lo}, {hi}]");
            assert!(prev.map_or(true, |p| k > p), "scan {i}: keys not strictly ascending at {k}");
            prev = Some(k);
            assert!(k <= span, "scan {i}: resurrected ghost key {k}");
            if k % STABLE_STRIDE == 0 {
                assert_eq!(v, k * 2, "scan {i}: stable key {k} has foreign value {v}");
            } else {
                assert_eq!(v, k * 7, "scan {i}: volatile key {k} has foreign value {v}");
            }
        }
        // No stable key in range may be missed: each was present for the
        // entire duration of the scan.
        let returned: Vec<u64> = got.iter().map(|&(k, _)| k).collect();
        for k in (lo..=hi.min(span)).filter(|k| k % STABLE_STRIDE == 0) {
            assert!(returned.binary_search(&k).is_ok(), "scan {i}: stable key {k} missing");
        }
    }
    stop.store(1, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

/// The full battery used by every linearizable implementation.
pub fn full_suite<M, F>(ctor: F)
where
    M: ConcurrentMap + 'static,
    F: Fn() -> M + Copy,
{
    sequential_suite(ctor);
    model_check(ctor, 4_000);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(2, 8);
    partitioned_concurrency(ctor, threads, 64);
    balance_stress(ctor, threads, 3_000, 96);
}
