//! Property-based differential tests for the `OrderedMap` surface: arbitrary
//! interleavings of point updates and range operations applied to a CSDS and
//! to a `BTreeMap` model must agree exactly (single-threaded, so the model
//! is authoritative), for one backing per ordered family plus extras.
//!
//! The concurrent side of the scan contract (no phantoms, no resurrections,
//! strictly ascending keys, stable keys always returned) is exercised by
//! `scan_under_churn` at the bottom.

use proptest::prelude::*;

use ascylib::bst::{BstTk, NatarajanBst};
use ascylib::list::{HarrisList, LazyList};
use ascylib::ordered::OrderedMap;
use ascylib::skiplist::{FraserOptSkipList, HerlihySkipList};
use ascylib::testing;

/// One shared op-decoding driver lives in `testing::ordered_ops_check`; the
/// proptest layer only supplies arbitrary op sequences and backings.
fn check_ordered_against_model<M: OrderedMap>(map: M, ops: &[(u8, u64, u64)]) {
    testing::ordered_ops_check(&map, ops, 96);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // One backing per ordered family (list / skip list / BST), plus a second
    // representative of each synchronization style.

    #[test]
    fn prop_harris_list_ranges_match_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..350)) {
        check_ordered_against_model(HarrisList::new(), &ops);
    }

    #[test]
    fn prop_lazy_list_ranges_match_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..350)) {
        check_ordered_against_model(LazyList::new(), &ops);
    }

    #[test]
    fn prop_fraser_opt_skiplist_ranges_match_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..350)) {
        check_ordered_against_model(FraserOptSkipList::new(), &ops);
    }

    #[test]
    fn prop_herlihy_skiplist_ranges_match_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..350)) {
        check_ordered_against_model(HerlihySkipList::new(), &ops);
    }

    #[test]
    fn prop_bst_tk_ranges_match_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..350)) {
        check_ordered_against_model(BstTk::new(), &ops);
    }

    #[test]
    fn prop_natarajan_ranges_match_model(ops in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..350)) {
        check_ordered_against_model(NatarajanBst::new(), &ops);
    }
}

// Concurrent scans racing point mutations: asserts the documented bounds of
// the non-snapshot semantics for one backing per ordered family.

#[test]
fn harris_list_scans_hold_their_bounds_under_churn() {
    testing::scan_under_churn(HarrisList::new, 3, 60);
}

#[test]
fn fraser_opt_skiplist_scans_hold_their_bounds_under_churn() {
    testing::scan_under_churn(FraserOptSkipList::new, 3, 60);
}

#[test]
fn bst_tk_scans_hold_their_bounds_under_churn() {
    testing::scan_under_churn(BstTk::new, 3, 60);
}
