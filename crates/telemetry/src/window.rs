//! Windowed telemetry: a bounded ring of timestamped *cumulative* samples
//! whose pairwise differences yield rates and short-horizon quantiles.
//!
//! Everything else in this crate is lifetime-cumulative: histograms and
//! counters only grow, so `INFO`/`METRICS` can tell an operator what the
//! server has done since boot but not what it is doing *now*. This module
//! adds the missing time axis without touching the hot path: readers (the
//! scrape handlers, a loadgen progress printer) periodically capture a
//! [`WindowSample`] — a cumulative counter vector plus a cumulative
//! [`HistogramSnapshot`] stamped with a monotonic clock — and push it into
//! a [`WindowRing`]. A windowed view is then the saturating difference
//! between the newest sample and the oldest sample inside the window
//! ([`WindowRing::delta`]), from which [`WindowDelta`] derives per-second
//! rates and delta-histogram quantiles (`p99` over the last ~10 s rather
//! than since boot).
//!
//! Rotation is **reader-driven**: nothing in the ring is touched by
//! request-serving threads. Concurrent scrapers elect one rotator per
//! interval with a single CAS ([`WindowRing::rotate`]); losers simply skip.
//! Time is supplied by the caller as opaque monotonic nanoseconds, so the
//! ring is clock-agnostic and testable: a backwards or frozen clock yields
//! an empty window and zero rates, never a panic or a wrapped counter.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hist::HistogramSnapshot;

/// Sentinel for "no sample accepted yet" in the rotation election.
const NEVER: u64 = u64::MAX;

/// Default spacing between accepted samples: 1 s.
pub const DEFAULT_WINDOW_INTERVAL_NS: u64 = 1_000_000_000;

/// Default ring capacity: 16 one-second samples comfortably cover a 10 s
/// window with slack for rotation jitter.
pub const DEFAULT_WINDOW_CAPACITY: usize = 16;

/// Default query horizon: rates and quantiles over the last ~10 s.
pub const DEFAULT_WINDOW_NS: u64 = 10_000_000_000;

/// One cumulative observation of a set of counters and a histogram at a
/// point in time. The counter indices are caller-defined (the embedder
/// decides what lives at index 0, 1, ...); both the counters and the
/// histogram must be cumulative so that differences between samples are
/// meaningful.
#[derive(Debug, Clone)]
pub struct WindowSample {
    /// Wall-clock milliseconds since the Unix epoch when the sample was
    /// taken (display only — never used for arithmetic).
    pub unix_ms: u64,
    /// Monotonic nanoseconds from any fixed origin. Differences between
    /// samples define elapsed time; the origin itself is irrelevant.
    pub mono_ns: u64,
    /// Cumulative counter values, indexed by the embedder's convention.
    pub counters: Vec<u64>,
    /// Cumulative histogram snapshot (e.g. all service times since boot).
    pub hist: HistogramSnapshot,
}

/// The difference between two [`WindowSample`]s: what happened during the
/// window, plus how long the window actually was.
#[derive(Debug, Clone)]
pub struct WindowDelta {
    /// Monotonic span between the two samples. Zero when the supplied
    /// clock was frozen or ran backwards — every rate is then 0.0.
    pub elapsed_ns: u64,
    /// Number of samples currently buffered in the ring.
    pub samples: usize,
    /// Per-counter saturating deltas (same indices as the samples).
    counters: Vec<u64>,
    /// Delta histogram for the window (see
    /// [`HistogramSnapshot::delta_since`] for the `max()` caveat).
    pub hist: HistogramSnapshot,
}

impl WindowDelta {
    /// The increase of counter `idx` over the window (0 for out-of-range
    /// indices, so embedders can grow the counter vector without breaking
    /// old readers).
    pub fn counter(&self, idx: usize) -> u64 {
        self.counters.get(idx).copied().unwrap_or(0)
    }

    /// Counter `idx` as a per-second rate. 0.0 when the window has no
    /// measurable span (frozen or backwards clock).
    pub fn rate(&self, idx: usize) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.counter(idx) as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// The window span in milliseconds.
    pub fn elapsed_ms(&self) -> u64 {
        self.elapsed_ns / 1_000_000
    }
}

/// A bounded ring of cumulative samples with CAS-elected, reader-driven
/// rotation. See the module docs for the design.
#[derive(Debug)]
pub struct WindowRing {
    interval_ns: u64,
    cap: usize,
    ring: Mutex<VecDeque<WindowSample>>,
    /// `mono_ns` of the last accepted sample ([`NEVER`] before the first).
    /// Doubles as the rotation election: whoever CASes it forward owns the
    /// push for this interval.
    last_rotate_ns: AtomicU64,
}

impl Default for WindowRing {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW_INTERVAL_NS, DEFAULT_WINDOW_CAPACITY)
    }
}

impl WindowRing {
    /// A ring accepting at most one sample per `interval_ns`, keeping the
    /// newest `cap` samples. `cap` is clamped to at least 2 (a delta needs
    /// two endpoints).
    pub fn new(interval_ns: u64, cap: usize) -> Self {
        WindowRing {
            interval_ns,
            cap: cap.max(2),
            ring: Mutex::new(VecDeque::new()),
            last_rotate_ns: AtomicU64::new(NEVER),
        }
    }

    /// The minimum spacing between accepted samples.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Whether a sample taken at `mono_ns` would currently be accepted.
    /// Cheap (one atomic load) — callers use it to skip building a sample
    /// at all when rotation is not due.
    pub fn due(&self, mono_ns: u64) -> bool {
        let last = self.last_rotate_ns.load(Ordering::Acquire);
        last == NEVER || mono_ns.saturating_sub(last) >= self.interval_ns
    }

    /// Offers a sample to the ring. At most one offer per interval wins —
    /// concurrent rotators race on a CAS and losers drop their sample.
    /// Returns whether this sample was stored.
    pub fn rotate(&self, sample: WindowSample) -> bool {
        let last = self.last_rotate_ns.load(Ordering::Acquire);
        if last != NEVER && sample.mono_ns.saturating_sub(last) < self.interval_ns {
            return false;
        }
        if self
            .last_rotate_ns
            .compare_exchange(last, sample.mono_ns, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.push(sample);
        true
    }

    /// Stores a sample unconditionally (no interval election). For
    /// embedders that drive rotation from their own fixed cadence, like
    /// the loadgen progress printer.
    pub fn force_rotate(&self, sample: WindowSample) {
        self.last_rotate_ns.store(sample.mono_ns, Ordering::Release);
        self.push(sample);
    }

    fn push(&self, sample: WindowSample) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(sample);
    }

    /// Number of samples currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether the ring holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The windowed view ending at the newest sample: the difference
    /// against the oldest sample no older than `window_ns`. Falls back to
    /// the immediately preceding sample when every other sample is older
    /// than the window (e.g. scrapes stopped for a while — the delta then
    /// honestly spans the whole gap, visible in `elapsed_ns`). Returns
    /// `None` until the ring holds two samples: a window needs both
    /// endpoints, so the very first scrape of a server's life has no rates.
    pub fn delta(&self, window_ns: u64) -> Option<WindowDelta> {
        let ring = self.ring.lock().unwrap();
        if ring.len() < 2 {
            return None;
        }
        let newest = ring.back().expect("len checked");
        // Oldest sample still inside the window; the sample before the
        // newest is the fallback baseline.
        let base = ring
            .iter()
            .find(|s| newest.mono_ns.saturating_sub(s.mono_ns) <= window_ns)
            .filter(|s| !std::ptr::eq(*s, newest))
            .unwrap_or_else(|| &ring[ring.len() - 2]);
        let counters = newest
            .counters
            .iter()
            .zip(base.counters.iter().chain(std::iter::repeat(&0)))
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        Some(WindowDelta {
            elapsed_ns: newest.mono_ns.saturating_sub(base.mono_ns),
            samples: ring.len(),
            counters,
            hist: newest.hist.delta_since(&base.hist),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    const S: u64 = 1_000_000_000;

    fn sample(mono_ns: u64, ops: u64, hist: HistogramSnapshot) -> WindowSample {
        WindowSample { unix_ms: 0, mono_ns, counters: vec![ops], hist }
    }

    #[test]
    fn empty_and_single_sample_windows_have_no_delta() {
        let ring = WindowRing::new(S, 8);
        assert!(ring.delta(10 * S).is_none());
        assert!(ring.rotate(sample(5 * S, 100, HistogramSnapshot::empty())));
        assert_eq!(ring.len(), 1);
        assert!(ring.delta(10 * S).is_none(), "one endpoint is not a window");
    }

    #[test]
    fn rotation_election_rejects_samples_inside_the_interval() {
        let ring = WindowRing::new(S, 8);
        assert!(ring.rotate(sample(10 * S, 1, HistogramSnapshot::empty())));
        // Too soon — dropped.
        assert!(!ring.rotate(sample(10 * S + S / 2, 2, HistogramSnapshot::empty())));
        assert_eq!(ring.len(), 1);
        // On the next interval boundary — accepted.
        assert!(ring.rotate(sample(11 * S, 3, HistogramSnapshot::empty())));
        assert_eq!(ring.len(), 2);
        let d = ring.delta(10 * S).unwrap();
        assert_eq!(d.counter(0), 2);
        assert_eq!(d.elapsed_ns, S);
        assert!((d.rate(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn delta_picks_the_oldest_sample_inside_the_window() {
        let ring = WindowRing::new(S, 8);
        for t in 0..6u64 {
            ring.force_rotate(sample(t * S, t * 100, HistogramSnapshot::empty()));
        }
        // Window of 3 s ending at t=5 s: baseline is t=2 s.
        let d = ring.delta(3 * S).unwrap();
        assert_eq!(d.elapsed_ns, 3 * S);
        assert_eq!(d.counter(0), 300);
        // A huge window reaches back to the oldest sample.
        let d = ring.delta(100 * S).unwrap();
        assert_eq!(d.elapsed_ns, 5 * S);
        assert_eq!(d.counter(0), 500);
    }

    #[test]
    fn delta_falls_back_to_the_previous_sample_when_the_gap_exceeds_the_window() {
        // Scrapes stopped for a minute: both samples are older than the
        // window relative to each other, so the delta spans the real gap.
        let ring = WindowRing::new(S, 8);
        ring.force_rotate(sample(10 * S, 1000, HistogramSnapshot::empty()));
        ring.force_rotate(sample(70 * S, 7000, HistogramSnapshot::empty()));
        let d = ring.delta(10 * S).unwrap();
        assert_eq!(d.elapsed_ns, 60 * S);
        assert_eq!(d.counter(0), 6000);
        assert!((d.rate(0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn frozen_or_backwards_clocks_yield_zero_rates_not_wraps() {
        let ring = WindowRing::new(S, 8);
        ring.force_rotate(sample(50 * S, 100, HistogramSnapshot::empty()));
        // Clock went backwards *and* the counter "reset" below baseline.
        ring.force_rotate(sample(40 * S, 30, HistogramSnapshot::empty()));
        let d = ring.delta(10 * S).unwrap();
        assert_eq!(d.elapsed_ns, 0, "backwards clock saturates to an empty span");
        assert_eq!(d.counter(0), 0, "counter reset saturates, never wraps");
        assert_eq!(d.rate(0), 0.0);
        // Frozen clock: same timestamp twice. The skewed ring resolves the
        // baseline to the oldest "in-window" sample (ages saturate to 0),
        // so the counter delta saturates too — zeros, never wraps.
        ring.force_rotate(sample(40 * S, 35, HistogramSnapshot::empty()));
        let d = ring.delta(10 * S).unwrap();
        assert_eq!(d.elapsed_ns, 0);
        assert_eq!(d.rate(0), 0.0);
        assert_eq!(d.counter(0), 0);
    }

    #[test]
    fn capacity_evicts_the_oldest_sample() {
        let ring = WindowRing::new(S, 4);
        for t in 0..10u64 {
            ring.force_rotate(sample(t * S, t, HistogramSnapshot::empty()));
        }
        assert_eq!(ring.len(), 4);
        // Oldest surviving sample is t=6.
        let d = ring.delta(100 * S).unwrap();
        assert_eq!(d.elapsed_ns, 3 * S);
        assert_eq!(d.counter(0), 3);
    }

    #[test]
    fn mismatched_counter_vectors_treat_missing_baselines_as_zero() {
        // The embedder grew its counter vector between samples.
        let ring = WindowRing::new(S, 8);
        let mut a = sample(0, 10, HistogramSnapshot::empty());
        a.counters = vec![10];
        ring.force_rotate(a);
        let mut b = sample(S, 25, HistogramSnapshot::empty());
        b.counters = vec![25, 7];
        ring.force_rotate(b);
        let d = ring.delta(10 * S).unwrap();
        assert_eq!(d.counter(0), 15);
        assert_eq!(d.counter(1), 7, "new counter deltas against an implicit 0");
        assert_eq!(d.counter(9), 0, "out-of-range reads are 0");
    }

    #[test]
    fn delta_matches_a_model_under_concurrent_recording() {
        // Writers hammer a cumulative counter + histogram while a rotator
        // thread samples them; every mid-flight delta must be internally
        // sane, and the final fenced delta must match the model exactly.
        const WRITERS: usize = 4;
        const PER: u64 = 40_000;
        let ops = Arc::new(AtomicU64::new(0));
        let hist = Arc::new(Histogram::new());
        let ring = Arc::new(WindowRing::new(0, 64)); // accept every sample
        let snap = |t: u64, ops: &AtomicU64, hist: &Histogram| WindowSample {
            unix_ms: 0,
            mono_ns: t,
            counters: vec![ops.load(Ordering::Relaxed)],
            hist: hist.snapshot(),
        };
        ring.force_rotate(snap(0, &ops, &hist));
        std::thread::scope(|scope| {
            for _ in 0..WRITERS {
                let (ops, hist) = (Arc::clone(&ops), Arc::clone(&hist));
                scope.spawn(move || {
                    for i in 0..PER {
                        hist.record(i % 4096);
                        ops.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let (ops, hist, ring) = (Arc::clone(&ops), Arc::clone(&hist), Arc::clone(&ring));
            scope.spawn(move || {
                for t in 1..40u64 {
                    ring.rotate(snap(t * S, &ops, &hist));
                    let d = ring.delta(u64::MAX).expect("two samples exist");
                    assert!(d.counter(0) <= WRITERS as u64 * PER);
                    assert!(d.hist.count() <= WRITERS as u64 * PER);
                    if d.hist.count() > 0 {
                        assert!(d.hist.quantile(0.99) <= d.hist.quantile(1.0));
                    }
                    std::hint::spin_loop();
                }
            });
        });
        // All writers joined: one final sample, then the full-history delta
        // must equal the model (everything that was ever recorded).
        ring.force_rotate(snap(1000 * S, &ops, &hist));
        let d = ring.delta(u64::MAX).unwrap();
        assert_eq!(d.counter(0), WRITERS as u64 * PER);
        assert_eq!(d.hist.count(), WRITERS as u64 * PER);
        assert_eq!(d.hist.sum(), hist.snapshot().sum());
    }
}
