//! Dependency-free observability for the ASCYLIB-RS serving stack.
//!
//! The ASPLOS'15 ASCYLIB methodology is measurement-first: no structure is
//! declared scalable until the numbers say so. This crate extends that
//! discipline to the serving tier itself — a server that cannot observe its
//! own latency distribution cannot be tuned honestly. Three primitives:
//!
//! - [`Histogram`]: a lock-free log-linear latency histogram
//!   (HdrHistogram-style bucketing). Recording is one index computation and
//!   one `Relaxed` `fetch_add`; readers [`snapshot`](Histogram::snapshot)
//!   and [`merge`](HistogramSnapshot::merge) without stopping writers.
//! - [`WorkerTelemetry`]: one per worker thread (cache-padded by the
//!   embedder), holding per-command-family histograms and hit/miss
//!   counters, per-phase histograms, and a [`SlowLog`] ring of requests
//!   that crossed a threshold.
//! - [`expo::Exposition`]: Prometheus text rendering of snapshots, plus a
//!   [`expo::validate`] mini-parser so tests can assert scrape bodies are
//!   well-formed without a real Prometheus in the loop.
//! - [`clock`]: a TSC-backed fast clock for the timing reads themselves —
//!   on virtualized hosts `Instant::now()` can cost more than the whole
//!   histogram record, and the recording budget is the embedder's hot path.
//! - [`window`]: a reader-rotated ring of cumulative samples turning the
//!   lifetime counters and histograms above into windowed rates and
//!   short-horizon quantiles (`ops/sec`, `p99` over the last 10 s) with no
//!   hot-path cost at all.
//!
//! The crate deliberately has zero dependencies so any layer of the stack
//! can embed it.

#![warn(missing_docs)]

pub mod clock;
pub mod expo;
pub mod hist;
pub mod slowlog;
pub mod window;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub use hist::{
    bucket_high, bucket_index, bucket_low, Histogram, HistogramSnapshot, MAX_RELATIVE_ERROR,
    MAX_TRACKABLE, NUM_BUCKETS,
};
pub use slowlog::{SlowLog, SlowOp, DEFAULT_SLOWLOG_CAPACITY};
pub use window::{WindowDelta, WindowRing, WindowSample};

/// Command families tracked separately. `Other` absorbs the control-plane
/// verbs (`PING`, `STATS`, `INFO`, `SLOWLOG`, `METRICS`, `QUIT`) so data
/// traffic aggregates are not polluted by the observer's own scrapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `GET`.
    Get,
    /// `SET`.
    Set,
    /// `DEL`.
    Del,
    /// `MGET`.
    MGet,
    /// `MSET`.
    MSet,
    /// `SCAN`.
    Scan,
    /// Everything else (control-plane verbs).
    Other,
}

/// Number of command families.
pub const NUM_FAMILIES: usize = 7;

impl Family {
    /// All families, in index order.
    pub const ALL: [Family; NUM_FAMILIES] = [
        Family::Get,
        Family::Set,
        Family::Del,
        Family::MGet,
        Family::MSet,
        Family::Scan,
        Family::Other,
    ];

    /// The six data families — [`Family::Other`] excluded.
    pub const DATA: [Family; 6] = [
        Family::Get,
        Family::Set,
        Family::Del,
        Family::MGet,
        Family::MSet,
        Family::Scan,
    ];

    /// Lower-case wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Get => "get",
            Family::Set => "set",
            Family::Del => "del",
            Family::MGet => "mget",
            Family::MSet => "mset",
            Family::Scan => "scan",
            Family::Other => "other",
        }
    }

    /// Dense index into per-family arrays.
    pub fn index(self) -> usize {
        match self {
            Family::Get => 0,
            Family::Set => 1,
            Family::Del => 2,
            Family::MGet => 3,
            Family::MSet => 4,
            Family::Scan => 5,
            Family::Other => 6,
        }
    }
}

/// Request processing phases timed separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Wire bytes → parsed request.
    Parse,
    /// Store operation + reply encoding.
    Execute,
    /// Draining the write buffer to the socket.
    Flush,
}

/// Number of phases.
pub const NUM_PHASES: usize = 3;

impl Phase {
    /// All phases, in index order.
    pub const ALL: [Phase; NUM_PHASES] = [Phase::Parse, Phase::Execute, Phase::Flush];

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Execute => "execute",
            Phase::Flush => "flush",
        }
    }

    /// Dense index into per-phase arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Execute => 1,
            Phase::Flush => 2,
        }
    }
}

/// Per-family recording cell: a service-time histogram plus outcome
/// counters. `ops` counts **every** request exactly; the histogram holds
/// the (possibly sampled) subset the embedder chose to time. For read
/// families `hits`/`misses` count per-key lookup outcomes (one per key for
/// `MGET`); for [`Family::Del`] the same cells count found/not-found.
/// Write families leave them at zero.
#[derive(Debug, Default)]
struct FamilyCell {
    hist: Histogram,
    ops: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// One worker thread's telemetry block. The embedder allocates one per
/// worker (cache-padded, alongside its stats block) so hot-path recording
/// never contends across threads; readers aggregate with
/// [`snapshot`](Self::snapshot) + [`TelemetrySnapshot::merge`].
///
/// **Single-writer contract:** exactly one thread (the owning worker) may
/// call the recording methods (`record_*`, `count_request`) on a block; the recording paths use
/// plain load + store pairs ([`Histogram::record_unsync`]) to keep `lock`
/// prefixes off the hot path. Any thread may snapshot concurrently —
/// that's the point. Concurrent *writers* would be memory-safe but could
/// lose increments. (The slow-op ring is mutex-guarded and exempt:
/// [`record_slow`](Self::record_slow) fires rarely, and resets may come
/// from any thread.)
#[derive(Debug, Default)]
pub struct WorkerTelemetry {
    families: [FamilyCell; NUM_FAMILIES],
    phases: [Histogram; NUM_PHASES],
    slow: Mutex<SlowLog>,
}

impl WorkerTelemetry {
    /// A zeroed block with the default slow-log capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one *timed* request of `family` taking `ns` nanoseconds:
    /// bumps the exact request counter and adds a histogram sample.
    /// Single-writer (see the type docs).
    #[inline]
    pub fn record_request(&self, family: Family, ns: u64) {
        let cell = &self.families[family.index()];
        cell.ops.store(cell.ops.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        cell.hist.record_unsync(ns);
    }

    /// Counts one *untimed* request of `family`: the exact counter moves,
    /// the histogram does not. Lets an embedder sample service-time
    /// measurement (clock reads are the dominant recording cost) without
    /// losing exact per-family request accounting. Single-writer.
    #[inline]
    pub fn count_request(&self, family: Family) {
        let cell = &self.families[family.index()];
        cell.ops.store(cell.ops.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Records time spent in one processing phase. Single-writer.
    #[inline]
    pub fn record_phase(&self, phase: Phase, ns: u64) {
        self.phases[phase.index()].record_unsync(ns);
    }

    /// Records per-key lookup outcomes for a read (or `DEL`) request.
    /// Single-writer.
    #[inline]
    pub fn record_lookups(&self, family: Family, hits: u64, misses: u64) {
        let cell = &self.families[family.index()];
        if hits > 0 {
            cell.hits.store(cell.hits.load(Ordering::Relaxed) + hits, Ordering::Relaxed);
        }
        if misses > 0 {
            cell.misses
                .store(cell.misses.load(Ordering::Relaxed) + misses, Ordering::Relaxed);
        }
    }

    /// Appends a slow operation to this worker's ring.
    pub fn record_slow(&self, op: SlowOp) {
        self.slow.lock().unwrap().push(op);
    }

    /// Point-in-time copy of the histograms and counters (the slow log is
    /// read separately via [`slow_ops`](Self::slow_ops)).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            families: std::array::from_fn(|i| {
                let cell = &self.families[i];
                FamilySnapshot {
                    ops: cell.ops.load(Ordering::Relaxed),
                    hits: cell.hits.load(Ordering::Relaxed),
                    misses: cell.misses.load(Ordering::Relaxed),
                    hist: cell.hist.snapshot(),
                }
            }),
            phases: std::array::from_fn(|i| self.phases[i].snapshot()),
        }
    }

    /// Copies this worker's slow-op entries, oldest first.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.slow.lock().unwrap().entries()
    }

    /// Entries currently in this worker's ring.
    pub fn slow_len(&self) -> usize {
        self.slow.lock().unwrap().len()
    }

    /// Clears this worker's ring.
    pub fn slow_reset(&self) {
        self.slow.lock().unwrap().reset();
    }
}

/// Snapshot of one family's cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FamilySnapshot {
    /// Exact request count (timed and untimed).
    pub ops: u64,
    /// Per-key lookup hits (found keys for `DEL`).
    pub hits: u64,
    /// Per-key lookup misses (absent keys for `DEL`).
    pub misses: u64,
    /// Service-time distribution over the *timed* requests; its count is
    /// the sample count, which trails `ops` when the embedder samples.
    pub hist: HistogramSnapshot,
}

impl FamilySnapshot {
    /// Requests recorded for this family (exact, sampling-independent).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Folds `other` into `self` (saturating).
    pub fn merge(&mut self, other: &FamilySnapshot) {
        self.ops = self.ops.saturating_add(other.ops);
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.hist.merge(&other.hist);
    }
}

/// Mergeable point-in-time copy of a [`WorkerTelemetry`] block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Per-family snapshots, indexed by [`Family::index`].
    pub families: [FamilySnapshot; NUM_FAMILIES],
    /// Per-phase histograms, indexed by [`Phase::index`].
    pub phases: [HistogramSnapshot; NUM_PHASES],
}

impl TelemetrySnapshot {
    /// Folds `other` into `self` (saturating), e.g. to aggregate across
    /// workers.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (mine, theirs) in self.families.iter_mut().zip(&other.families) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
    }

    /// The family snapshot for `family`.
    pub fn family(&self, family: Family) -> &FamilySnapshot {
        &self.families[family.index()]
    }

    /// Merged service-time distribution across the six *data* families —
    /// [`Family::Other`] is excluded so a monitoring client's own `INFO` /
    /// `METRICS` scrapes do not pollute the request aggregate.
    pub fn data_requests(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for f in Family::DATA {
            out.merge(&self.family(f).hist);
        }
        out
    }

    /// Exact request count across the six *data* families (timed and
    /// untimed; see [`data_requests`](Self::data_requests) for the
    /// exclusion rationale).
    pub fn data_ops(&self) -> u64 {
        Family::DATA.iter().fold(0u64, |acc, f| acc.saturating_add(self.family(*f).ops))
    }

    /// Total hits and misses across read families (`GET` + `MGET`).
    pub fn read_outcomes(&self) -> (u64, u64) {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for f in [Family::Get, Family::MGet] {
            let s = self.family(f);
            hits = hits.saturating_add(s.hits);
            misses = misses.saturating_add(s.misses);
        }
        (hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_and_phase_indices_are_dense_and_named() {
        for (i, f) in Family::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
            assert!(!f.name().is_empty());
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
        assert_eq!(Family::DATA.len(), NUM_FAMILIES - 1);
        assert!(!Family::DATA.contains(&Family::Other));
    }

    #[test]
    fn worker_telemetry_records_and_snapshots() {
        let tel = WorkerTelemetry::new();
        tel.record_request(Family::Get, 1_000);
        tel.record_request(Family::Get, 2_000);
        tel.record_request(Family::Set, 5_000);
        tel.record_request(Family::Other, 9_000_000);
        tel.record_phase(Phase::Parse, 100);
        tel.record_phase(Phase::Execute, 900);
        tel.record_lookups(Family::Get, 1, 1);
        tel.record_lookups(Family::MGet, 3, 2);

        let snap = tel.snapshot();
        assert_eq!(snap.family(Family::Get).ops(), 2);
        assert_eq!(snap.family(Family::Set).ops(), 1);
        assert_eq!(snap.family(Family::Get).hits, 1);
        assert_eq!(snap.family(Family::MGet).misses, 2);
        assert_eq!(snap.read_outcomes(), (4, 3));
        assert_eq!(snap.phases[Phase::Parse.index()].count(), 1);

        // Other is excluded from the data aggregate.
        let data = snap.data_requests();
        assert_eq!(data.count(), 3);
        assert!(data.max() < 9_000_000);
    }

    #[test]
    fn snapshots_merge_across_workers() {
        let a = WorkerTelemetry::new();
        let b = WorkerTelemetry::new();
        a.record_request(Family::Scan, 10_000);
        a.record_lookups(Family::Del, 2, 0);
        b.record_request(Family::Scan, 20_000);
        b.record_lookups(Family::Del, 0, 5);

        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.family(Family::Scan).ops(), 2);
        assert_eq!(total.family(Family::Del).hits, 2);
        assert_eq!(total.family(Family::Del).misses, 5);
        let hist = &total.family(Family::Scan).hist;
        assert!(hist.quantile(1.0) >= 20_000);
    }

    #[test]
    fn slow_ring_round_trips_through_the_block() {
        let tel = WorkerTelemetry::new();
        assert_eq!(tel.slow_len(), 0);
        tel.record_slow(SlowOp {
            family: Family::MSet,
            key: 42,
            bytes: 1 << 20,
            duration_ns: 15_000_000,
            unix_ms: 1_700_000_000_000,
            worker: 3,
            shard: 7,
        });
        assert_eq!(tel.slow_len(), 1);
        let ops = tel.slow_ops();
        assert_eq!(ops[0].key, 42);
        assert_eq!(ops[0].family, Family::MSet);
        assert_eq!(ops[0].worker, 3);
        assert_eq!(ops[0].shard, 7);
        tel.slow_reset();
        assert_eq!(tel.slow_len(), 0);
    }
}
