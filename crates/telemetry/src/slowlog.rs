//! A bounded ring buffer of the slowest recent operations.
//!
//! Each worker owns one [`SlowLog`] behind a mutex: entries are pushed only
//! when a request's service time crosses the configured threshold, so the
//! lock is off the hot path entirely — the common case never touches it.
//! When the ring is full the oldest entry is evicted (and counted), so the
//! log always holds the most recent slow operations.

use std::collections::VecDeque;

use crate::Family;

/// Default per-worker ring capacity.
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 128;

/// One captured slow operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowOp {
    /// Which command family the request belonged to.
    pub family: Family,
    /// The primary key of the request (first key for batched verbs, the
    /// cursor for `SCAN`, 0 for keyless verbs).
    pub key: u64,
    /// Payload bytes the request carried (`SET` value length, `MSET`
    /// total; 0 for reads).
    pub bytes: u64,
    /// Service time in nanoseconds (execute phase).
    pub duration_ns: u64,
    /// Capture time as milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Index of the worker thread that served the request, so a slow op
    /// can be attributed to one serving thread.
    pub worker: u32,
    /// Index of the shard the primary key routes to (0 when the embedder
    /// is unsharded), so a slow op can be attributed to a contended shard
    /// rather than just a command family.
    pub shard: u32,
}

/// The ring buffer proper. Callers wrap it in a `Mutex` (see
/// [`crate::WorkerTelemetry`]); it is not internally synchronized because
/// pushes are rare by construction.
#[derive(Debug)]
pub struct SlowLog {
    buf: VecDeque<SlowOp>,
    cap: usize,
    /// Entries evicted because the ring was full (so `LEN` can be honest
    /// about truncation).
    dropped: u64,
}

impl Default for SlowLog {
    fn default() -> Self {
        Self::new(DEFAULT_SLOWLOG_CAPACITY)
    }
}

impl SlowLog {
    /// An empty ring holding at most `cap` entries (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SlowLog { buf: VecDeque::with_capacity(cap), cap, dropped: 0 }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn push(&mut self, op: SlowOp) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(op);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Entries evicted to make room since the last [`reset`](Self::reset).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Copies the entries out, oldest first.
    pub fn entries(&self) -> Vec<SlowOp> {
        self.buf.iter().copied().collect()
    }

    /// Clears the ring and the dropped counter.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(key: u64, dur: u64) -> SlowOp {
        SlowOp {
            family: Family::Get,
            key,
            bytes: 0,
            duration_ns: dur,
            unix_ms: key,
            worker: 0,
            shard: 0,
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_entries() {
        let mut log = SlowLog::new(3);
        for k in 1..=5 {
            log.push(op(k, k * 100));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let keys: Vec<u64> = log.entries().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![3, 4, 5], "oldest evicted first");
        log.reset();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }
}
