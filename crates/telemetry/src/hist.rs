//! A lock-free log-linear latency histogram (HdrHistogram-style bucketing).
//!
//! Values (nanoseconds, but the histogram does not care) are mapped to a
//! fixed array of buckets: the first [`SUB`] buckets are linear (width 1,
//! exact), and every power-of-two octave above them is split into
//! [`SUB`]`/2` equal sub-buckets, so the relative width of any bucket is at
//! most `2/SUB` (6.25% at the default `SUB = 32`). Recording is one
//! index computation (a `leading_zeros` and a shift) plus one `Relaxed`
//! `fetch_add` — no locks, no allocation, no ordering obligations — which
//! is what makes it safe to leave enabled on a serving hot path.
//!
//! Aggregation is snapshot-and-merge: each writer owns its own `Histogram`
//! (the server gives every worker a cache-padded block), readers copy the
//! buckets into a [`HistogramSnapshot`] and sum snapshots. A snapshot taken
//! while writers are recording is *statistical* — each bucket is atomically
//! read, but the set of buckets is not a consistent cut. That is the same
//! contract as every other counter in this codebase.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the linear region: values below `1 << SUB_BITS` get exact
/// width-1 buckets.
pub const SUB_BITS: u32 = 5;

/// Number of linear buckets (and sub-buckets per octave times two).
pub const SUB: usize = 1 << SUB_BITS;

const HALF: usize = SUB / 2;

/// Octaves above the linear region. Together with [`SUB_BITS`] this sets
/// [`MAX_TRACKABLE`]: 35 octaves over 2^5 tracks up to 2^40 − 1 ns ≈ 18.3
/// minutes — far beyond any plausible request service time.
const OCTAVES: usize = 35;

/// Total bucket count.
pub const NUM_BUCKETS: usize = SUB + OCTAVES * HALF;

/// Largest distinguishable value. Recording a larger value saturates into
/// the top bucket (and contributes `MAX_TRACKABLE` to the sum, keeping the
/// mean and the buckets consistent with each other).
pub const MAX_TRACKABLE: u64 = (1u64 << (SUB_BITS as u64 + OCTAVES as u64)) - 1;

/// Maximum relative error of a reported quantile: a bucket's width divided
/// by its lower bound never exceeds `2 / SUB`.
pub const MAX_RELATIVE_ERROR: f64 = 2.0 / SUB as f64;

/// Maps a value to its bucket index (clamping into the top bucket above
/// [`MAX_TRACKABLE`]).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - (SUB_BITS - 1);
    let sub = (v >> shift) as usize; // in [HALF, SUB)
    let idx = SUB + (msb - SUB_BITS) as usize * HALF + (sub - HALF);
    idx.min(NUM_BUCKETS - 1)
}

/// The largest value bucket `i` covers (inclusive). This is what quantile
/// queries report, so reported quantiles never under-estimate.
#[inline]
pub fn bucket_high(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = (i - SUB) / HALF;
    let pos = ((i - SUB) % HALF) as u64;
    let shift = octave as u32 + 1;
    ((HALF as u64 + pos + 1) << shift) - 1
}

/// The smallest value bucket `i` covers.
#[inline]
pub fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = (i - SUB) / HALF;
    let pos = ((i - SUB) % HALF) as u64;
    let shift = octave as u32 + 1;
    (HALF as u64 + pos) << shift
}

/// A fixed-size atomic bucket array. One writer per instance is the
/// intended discipline (per-worker blocks), but concurrent recording is
/// safe — just slower, because the lines bounce.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram ([`NUM_BUCKETS`] zeroed buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: one index computation plus `Relaxed` atomics.
    /// The max is checked with a plain load first, so the common case
    /// (value not a new maximum) costs two `fetch_add`s.
    #[inline]
    pub fn record(&self, v: u64) {
        let clamped = v.min(MAX_TRACKABLE);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(clamped, Ordering::Relaxed);
        if clamped > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(clamped, Ordering::Relaxed);
        }
    }

    /// Records one value from the histogram's **single writer**: the
    /// read-modify-writes are plain load + store pairs (no `lock` prefix),
    /// which on virtualized hosts costs a fraction of [`record`](Self::record).
    ///
    /// Memory-safe under any concurrency, but if two threads call this on
    /// the same histogram concurrently, increments may be lost. Use it only
    /// where one thread owns the writes (e.g. a per-worker telemetry
    /// block); concurrent readers may still
    /// [`snapshot`](Self::snapshot) at any time.
    #[inline]
    pub fn record_unsync(&self, v: u64) {
        let clamped = v.min(MAX_TRACKABLE);
        let bucket = &self.buckets[bucket_index(v)];
        bucket.store(bucket.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.sum
            .store(self.sum.load(Ordering::Relaxed).saturating_add(clamped), Ordering::Relaxed);
        if clamped > self.max.load(Ordering::Relaxed) {
            self.max.store(clamped, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the buckets (statistical, see module docs).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
            count = count.saturating_add(*dst);
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state, mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with zero recorded values.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (each clamped to [`MAX_TRACKABLE`]).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (clamped to [`MAX_TRACKABLE`]).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another snapshot into this one (saturating).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The change between this snapshot and an `earlier` one of the same
    /// cumulative histogram: bucket-wise saturating subtraction, with the
    /// count recomputed from the delta buckets so it is exact even when the
    /// two snapshots were statistical cuts. The `max` of a window cannot be
    /// recovered from cumulative state, so the delta keeps the newer
    /// snapshot's max as a documented **upper bound** (zeroed when the
    /// window is empty). Windowed quantiles therefore stay within the usual
    /// bucket error; only `max()` is approximate.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        for (i, dst) in buckets.iter_mut().enumerate() {
            *dst = self.buckets[i].saturating_sub(earlier.buckets[i]);
            count = count.saturating_add(*dst);
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max: if count == 0 { 0 } else { self.max },
        }
    }

    /// The `q`-quantile (`q` in `(0, 1]`) by the nearest-rank definition:
    /// the upper bound of the bucket holding the `ceil(q·count)`-th
    /// smallest recorded value, capped at the largest recorded value (a
    /// bucket bound can overshoot every sample when the rank lands in the
    /// max's own bucket). Reported values never under-estimate the exact
    /// quantile and over-estimate it by at most [`MAX_RELATIVE_ERROR`], and
    /// every reported quantile is `<= max()`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        bucket_high(NUM_BUCKETS - 1).min(self.max)
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending bound order — the compact form the exposition and JSON
    /// emitters serialize.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_high(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn record_unsync_matches_record_for_a_single_writer() {
        let locked = Histogram::new();
        let unsync = Histogram::new();
        let values = [0u64, 1, 31, 32, 1000, MAX_TRACKABLE, u64::MAX];
        for &v in &values {
            locked.record(v);
            unsync.record_unsync(v);
        }
        let (a, b) = (locked.snapshot(), unsync.snapshot());
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.max(), b.max());
    }

    #[test]
    fn bucket_geometry_is_contiguous_and_exhaustive() {
        // Every bucket's low is the previous bucket's high + 1, buckets
        // cover [0, MAX_TRACKABLE] with no gaps, and bucket_index inverts
        // the bounds.
        assert_eq!(bucket_low(0), 0);
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = (bucket_low(i), bucket_high(i));
            assert!(lo <= hi, "bucket {i}");
            if i > 0 {
                assert_eq!(lo, bucket_high(i - 1) + 1, "bucket {i} starts after {}", i - 1);
            }
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            // Relative width bound: (hi - lo) <= lo * MAX_RELATIVE_ERROR.
            if lo > 0 {
                assert!(
                    (hi - lo) as f64 <= lo as f64 * MAX_RELATIVE_ERROR,
                    "bucket {i}: [{lo}, {hi}] too wide"
                );
            }
        }
        assert_eq!(bucket_high(NUM_BUCKETS - 1), MAX_TRACKABLE);
    }

    #[test]
    fn record_and_query_round_trip() {
        let h = Histogram::new();
        for v in [0, 1, 31, 32, 33, 1000, 1_000_000, MAX_TRACKABLE] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.max(), MAX_TRACKABLE);
        assert_eq!(s.sum(), 1 + 31 + 32 + 33 + 1000 + 1_000_000 + MAX_TRACKABLE);
        // Linear region is exact.
        assert_eq!(s.quantile(0.125), 0);
        assert_eq!(s.quantile(1.0), MAX_TRACKABLE);
        // The non-zero bucket list is ascending and covers all 8 records.
        let nz = s.nonzero_buckets();
        assert!(nz.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(nz.iter().map(|&(_, c)| c).sum::<u64>(), 8);
    }

    #[test]
    fn saturation_at_max_trackable() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(MAX_TRACKABLE + 1);
        h.record(MAX_TRACKABLE);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), MAX_TRACKABLE);
        assert_eq!(s.sum(), 3 * MAX_TRACKABLE);
        assert_eq!(s.quantile(0.5), MAX_TRACKABLE);
        assert_eq!(s.nonzero_buckets(), vec![(MAX_TRACKABLE, 3)]);
    }

    #[test]
    fn merge_sums_buckets_and_keeps_the_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(100);
        b.record(100);
        b.record(5000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 10 + 100 + 100 + 5000);
        assert!(s.max() >= 5000);
        assert_eq!(s.nonzero_buckets().iter().map(|&(_, c)| c).sum::<u64>(), 4);
    }

    #[test]
    fn delta_since_recovers_the_window_and_handles_empty_and_reset_cases() {
        let h = Histogram::new();
        h.record(10);
        h.record(1000);
        let earlier = h.snapshot();
        h.record(20);
        h.record(5000);
        let later = h.snapshot();
        let d = later.delta_since(&earlier);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 20 + 5000);
        assert_eq!(d.nonzero_buckets().iter().map(|&(_, c)| c).sum::<u64>(), 2);
        // Quantiles come from the delta buckets alone.
        assert!(d.quantile(0.5) >= 20 && d.quantile(0.5) <= 21);
        // Empty window: identical snapshots produce a zero delta with max 0.
        let z = later.delta_since(&later);
        assert_eq!(z.count(), 0);
        assert_eq!(z.sum(), 0);
        assert_eq!(z.max(), 0);
        // A "reset" (earlier snapshot ahead of later — counters went
        // backwards) saturates instead of wrapping.
        let back = earlier.delta_since(&later);
        assert_eq!(back.count(), 0);
        assert_eq!(back.sum(), 0);
    }

    #[test]
    fn concurrent_record_snapshot_merge() {
        // Writers hammer one histogram each while a reader merges snapshots
        // mid-flight; after joining, the merged total is exact.
        const WRITERS: usize = 4;
        const PER: u64 = 50_000;
        let hists: Arc<Vec<Histogram>> =
            Arc::new((0..WRITERS).map(|_| Histogram::new()).collect());
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let hists = Arc::clone(&hists);
                scope.spawn(move || {
                    for i in 0..PER {
                        // Spread across the whole range, octaves included.
                        hists[w].record(i.wrapping_mul(2654435761) % (1 << 22));
                    }
                });
            }
            // Concurrent reader: snapshots must always be internally sane
            // (counts equal bucket sums — guaranteed by construction — and
            // never exceed the final total).
            let hists2 = Arc::clone(&hists);
            scope.spawn(move || {
                for _ in 0..100 {
                    let mut merged = HistogramSnapshot::empty();
                    for h in hists2.iter() {
                        merged.merge(&h.snapshot());
                    }
                    assert!(merged.count() <= WRITERS as u64 * PER);
                    if merged.count() > 0 {
                        assert!(merged.quantile(0.5) <= merged.quantile(1.0));
                    }
                    std::hint::spin_loop();
                }
            });
        });
        let mut merged = HistogramSnapshot::empty();
        for h in hists.iter() {
            merged.merge(&h.snapshot());
        }
        assert_eq!(merged.count(), WRITERS as u64 * PER);
        assert_eq!(
            merged.nonzero_buckets().iter().map(|&(_, c)| c).sum::<u64>(),
            WRITERS as u64 * PER
        );
    }

    /// The sorted-`Vec` exact-percentile oracle: nearest-rank over the raw
    /// (clamped) samples.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn quantiles_match_the_sorted_vec_oracle_within_bucket_error(
            values in collection::vec(0u64..(1u64 << 44), 1..400),
            qs in collection::vec(1u64..10_000, 1..8),
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted: Vec<u64> =
                values.iter().map(|&v| v.min(MAX_TRACKABLE)).collect();
            sorted.sort_unstable();
            let s = h.snapshot();
            assert_eq!(s.count(), values.len() as u64);
            for &qi in &qs {
                let q = qi as f64 / 10_000.0;
                let exact = exact_quantile(&sorted, q);
                let reported = s.quantile(q);
                // The reported quantile is the upper bound of the exact
                // value's bucket: never below it, above it by at most the
                // bucket's relative width.
                assert!(reported >= exact, "q={q}: reported {reported} < exact {exact}");
                let slack = (exact as f64 * MAX_RELATIVE_ERROR) as u64 + 1;
                assert!(
                    reported - exact <= slack,
                    "q={q}: reported {reported} vs exact {exact} (slack {slack})"
                );
            }
        }

        #[test]
        fn every_value_lands_in_a_bucket_that_contains_it(v in 0u64..u64::MAX) {
            let i = bucket_index(v);
            let clamped = v.min(MAX_TRACKABLE);
            assert!(bucket_low(i) <= clamped && clamped <= bucket_high(i));
        }
    }
}
