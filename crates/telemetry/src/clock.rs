//! A cheap monotonic clock for hot-path timing.
//!
//! `Instant::now()` routes through `clock_gettime`, which on virtualized
//! hosts without a vDSO fast path costs 50–100 ns — more than the rest of
//! a histogram record combined. On x86_64 this module reads the TSC
//! directly (`rdtsc`, roughly half the cost even when the hypervisor
//! intercepts it) and converts tick deltas to nanoseconds with a scale
//! calibrated once per process against `Instant`. Other architectures fall
//! back to `Instant` transparently.
//!
//! Readings are opaque ticks: subtract two and convert with
//! [`delta_ns`]. The TSC is not serialized (no `lfence`), so a reading can
//! drift a few cycles against surrounding instructions — noise far below
//! the microsecond scale of a request — and on multi-socket machines a
//! thread migration can step the tick count slightly; [`delta_ns`]
//! saturates instead of wrapping when that produces a backwards interval.

use std::sync::OnceLock;
use std::time::Instant;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;

    /// Nanoseconds per tick in Q32 fixed point (`ns = ticks * q >> 32`):
    /// one widening multiply on the conversion path instead of int→float→
    /// int round trips.
    static NS_PER_TICK_Q32: OnceLock<u64> = OnceLock::new();

    /// Reads the raw tick counter.
    #[inline]
    pub fn now() -> u64 {
        // SAFETY: `rdtsc` has no preconditions; it is available on every
        // x86_64 CPU.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// The Q32 tick→ns scale, calibrated against `Instant` on first use
    /// (~200 µs, once per process — call [`calibrate`] at startup to keep
    /// it off any measured path).
    pub fn scale_q32() -> u64 {
        *NS_PER_TICK_Q32.get_or_init(|| {
            let t0 = Instant::now();
            let c0 = now();
            while t0.elapsed() < std::time::Duration::from_micros(200) {
                std::hint::spin_loop();
            }
            let ticks = now().wrapping_sub(c0);
            let ns = t0.elapsed().as_nanos() as f64;
            if ticks == 0 {
                return 1u64 << 32; // a TSC that does not advance: ticks as ns
            }
            ((ns / ticks as f64) * (1u64 << 32) as f64).round().max(1.0) as u64
        })
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    use super::*;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Nanoseconds since the process-wide epoch (first use).
    #[inline]
    pub fn now() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Ticks are already nanoseconds on the fallback path (identity scale).
    pub fn scale_q32() -> u64 {
        let _ = EPOCH.get_or_init(Instant::now);
        1u64 << 32
    }
}

/// An opaque reading of the fast clock. Only differences between two
/// readings are meaningful; convert them with [`delta_ns`].
#[inline]
pub fn now() -> u64 {
    imp::now()
}

/// The nanoseconds elapsed from `start` to `end` (both from [`now`]).
/// A backwards interval (TSC step on thread migration) yields 0.
#[inline]
pub fn delta_ns(start: u64, end: u64) -> u64 {
    let ticks = end.saturating_sub(start) as u128;
    ((ticks * imp::scale_q32() as u128) >> 32) as u64
}

/// Forces tick-rate calibration now (~200 µs on x86_64, instant
/// elsewhere). Call once at startup so the first timed operation does not
/// absorb the calibration spin.
pub fn calibrate() {
    let _ = imp::scale_q32();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn sleep_intervals_convert_to_plausible_nanoseconds() {
        calibrate();
        let start = now();
        std::thread::sleep(Duration::from_millis(10));
        let ns = delta_ns(start, now());
        // Sleep can oversleep generously under load, but never undershoot,
        // and a sane scale cannot inflate 10 ms into seconds.
        assert!(ns >= 9_000_000, "10ms slept, measured only {ns}ns");
        assert!(ns < 2_000_000_000, "10ms slept, measured {ns}ns");
    }

    #[test]
    fn backwards_intervals_saturate_to_zero() {
        let a = now();
        let b = now();
        assert_eq!(delta_ns(b.max(a) + 1, a.min(b)), 0);
    }

    #[test]
    fn readings_are_monotonic_on_one_thread() {
        let mut prev = now();
        for _ in 0..10_000 {
            let cur = now();
            assert!(cur >= prev, "tick counter went backwards on one thread");
            prev = cur;
        }
    }
}
