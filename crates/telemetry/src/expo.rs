//! Prometheus text exposition (version 0.0.4) rendering and validation.
//!
//! [`Exposition`] builds the scrape body line by line: `# HELP` / `# TYPE`
//! headers are emitted once per metric name (label-varied series of the
//! same metric share them), counters and gauges are one sample line each,
//! and histograms render the standard cumulative `_bucket{le="…"}` series
//! plus `_sum` and `_count`. Only non-empty buckets are materialized (the
//! cumulative encoding loses nothing by skipping repeats), which keeps a
//! 592-bucket histogram's wire form proportional to the distribution's
//! support, not the bucket array.
//!
//! [`validate`] is a mini-parser for the same format, used by tests and
//! smoke checks to assert a scrape body is well-formed without a real
//! Prometheus in the loop.

use std::fmt::Write as _;

use crate::hist::HistogramSnapshot;

/// Builder for one scrape body.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    seen: Vec<String>,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.iter().any(|s| s == name) {
            return;
        }
        self.seen.push(name.to_string());
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
        let mut parts: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Emits one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name}{} {value}", Self::labels(labels, None));
    }

    /// Emits one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name}{} {value}", Self::labels(labels, None));
    }

    /// Emits one histogram: cumulative `_bucket` series over the snapshot's
    /// non-empty buckets, a closing `le="+Inf"` bucket, `_sum`, and
    /// `_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (high, count) in snap.nonzero_buckets() {
            cumulative = cumulative.saturating_add(count);
            let lbl = Self::labels(labels, Some(("le", &high.to_string())));
            let _ = writeln!(self.out, "{name}_bucket{lbl} {cumulative}");
        }
        let inf = Self::labels(labels, Some(("le", "+Inf")));
        let _ = writeln!(self.out, "{name}_bucket{inf} {}", snap.count());
        let plain = Self::labels(labels, None);
        let _ = writeln!(self.out, "{name}_sum{plain} {}", snap.sum());
        let _ = writeln!(self.out, "{name}_count{plain} {}", snap.count());
    }

    /// The finished scrape body.
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits `name{label="v",...}` into the name and its label pairs,
/// validating quoting and escapes.
fn parse_series(series: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(brace) = series.find('{') else {
        if !valid_metric_name(series) {
            return Err(format!("bad metric name {series:?}"));
        }
        return Ok((series.to_string(), Vec::new()));
    };
    let name = &series[..brace];
    if !valid_metric_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let rest = &series[brace + 1..];
    let Some(body) = rest.strip_suffix('}') else {
        return Err(format!("unterminated label set in {series:?}"));
    };
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut label = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            label.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("label {label:?} missing =\"…\" in {series:?}"));
        }
        if !valid_label_name(&label) {
            return Err(format!("bad label name {label:?}"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some(e @ ('\\' | '"' | 'n')) => {
                        value.push('\\');
                        value.push(e);
                    }
                    other => return Err(format!("bad escape {other:?} in {series:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {series:?}")),
            }
        }
        labels.push((label, value));
        match chars.next() {
            None => break,
            Some(',') => continue,
            Some(c) => return Err(format!("expected ',' or end, got {c:?} in {series:?}")),
        }
    }
    Ok((name.to_string(), labels))
}

/// Strips a histogram series name down to its base metric name.
fn base_name(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Validates a Prometheus text-exposition body: every line is a comment,
/// blank, or `series value`; `# TYPE` declarations are well-formed and
/// precede their samples; no series (name plus exact label set) appears
/// twice — the scrape form of the gauge-vs-counter confusion where one
/// family is emitted through two paths; histogram `_bucket` series carry
/// an `le` label, are cumulative (non-decreasing), and close with
/// `le="+Inf"` equal to `_count`. Returns a description of the first
/// problem found.
pub fn validate(body: &str) -> Result<(), String> {
    use std::collections::HashMap;
    // metric name -> declared type
    let mut types: HashMap<String, String> = HashMap::new();
    // histogram name+labels -> (last cumulative, saw +Inf with that value)
    let mut cumul: HashMap<String, u64> = HashMap::new();
    let mut inf: HashMap<String, u64> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();
    // full series identity (name + sorted labels) -> first line seen.
    // Keyed on the structured label set, not a joined string: label
    // values may themselves contain '=' or ',', and a flattened join
    // would collide {a="x,b=y"} with {a="x",b="y"}.
    let mut series_seen: HashMap<(String, Vec<(String, String)>), usize> = HashMap::new();
    let mut samples = 0usize;

    for (lineno, line) in body.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad TYPE metric name {name:?}"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {n}: bad TYPE kind {kind:?}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {n}: duplicate TYPE for {name}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad HELP metric name {name:?}"));
                }
            }
            continue;
        }
        let Some(space) = line.rfind(' ') else {
            return Err(format!("line {n}: no value in {line:?}"));
        };
        let (series, value) = (&line[..space], &line[space + 1..]);
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN"
        {
            return Err(format!("line {n}: bad sample value {value:?}"));
        }
        let (name, labels) = parse_series(series).map_err(|e| format!("line {n}: {e}"))?;
        let base = base_name(&name);
        let declared = types
            .get(base)
            .or_else(|| types.get(&name))
            .ok_or_else(|| format!("line {n}: sample {name} precedes its TYPE"))?;
        samples += 1;
        let mut sorted = labels.clone();
        sorted.sort();
        if let Some(first) = series_seen.insert((name.clone(), sorted), n) {
            return Err(format!(
                "line {n}: series {series} already emitted at line {first}"
            ));
        }
        if declared == "histogram" && name.ends_with("_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("line {n}: histogram bucket without le label"))?;
            let others: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let key = format!("{base}|{}", others.join(","));
            let v: u64 = value
                .parse()
                .map_err(|_| format!("line {n}: non-integer bucket count {value:?}"))?;
            if le == "+Inf" {
                inf.insert(key, v);
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("line {n}: non-numeric le {le:?}"))?;
                let prev = cumul.entry(key).or_insert(0);
                if v < *prev {
                    return Err(format!("line {n}: bucket series not cumulative"));
                }
                *prev = v;
            }
        } else if declared == "histogram" && name.ends_with("_count") {
            let key_labels: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let key = format!("{base}|{}", key_labels.join(","));
            let v: u64 = value
                .parse()
                .map_err(|_| format!("line {n}: non-integer count {value:?}"))?;
            counts.insert(key, v);
        }
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    for (key, &count) in &counts {
        match inf.get(key) {
            Some(&i) if i == count => {}
            Some(&i) => {
                return Err(format!("histogram {key}: le=\"+Inf\" {i} != _count {count}"));
            }
            None => return Err(format!("histogram {key}: missing le=\"+Inf\" bucket")),
        }
        if let Some(&last) = cumul.get(key) {
            if last > count {
                return Err(format!("histogram {key}: cumulative {last} exceeds count {count}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn builder_output_validates_and_is_stable() {
        let h = Histogram::new();
        for v in [3, 3, 40, 40, 41, 100_000] {
            h.record(v);
        }
        let mut e = Exposition::new();
        e.counter("ascy_requests_total", "Requests served.", &[("family", "get")], 7);
        e.counter("ascy_requests_total", "Requests served.", &[("family", "set")], 2);
        e.gauge("ascy_connections", "Open connections.", &[], 3);
        e.histogram(
            "ascy_request_duration_ns",
            "Request service time.",
            &[("family", "get")],
            &h.snapshot(),
        );
        let body = e.finish();
        validate(&body).expect("builder output must validate");
        // HELP/TYPE once per metric even with two labelled series.
        assert_eq!(body.matches("# TYPE ascy_requests_total").count(), 1);
        // Cumulative buckets end at the exact count.
        assert!(body.contains("ascy_request_duration_ns_bucket{family=\"get\",le=\"+Inf\"} 6"));
        assert!(body.contains("ascy_request_duration_ns_count{family=\"get\"} 6"));
        assert!(body.contains("ascy_request_duration_ns_sum{family=\"get\"} 100127"));
    }

    #[test]
    fn empty_histogram_still_renders_a_complete_series() {
        let mut e = Exposition::new();
        e.histogram("ascy_lat", "x.", &[], &Histogram::new().snapshot());
        let body = e.finish();
        validate(&body).expect("empty histogram validates");
        assert!(body.contains("ascy_lat_bucket{le=\"+Inf\"} 0"));
        assert!(body.contains("ascy_lat_count 0"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut e = Exposition::new();
        e.counter("ascy_x", "h.", &[("k", "a\"b\\c\nd")], 1);
        let body = e.finish();
        validate(&body).expect("escaped labels validate");
        assert!(body.contains("ascy_x{k=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn hotkey_families_render_and_validate() {
        // The exact shapes the server's hot-key block emits: one gauge, a
        // run of plain counters, and one counter name fanned out over a
        // `result` label — the header must appear once for the fan-out.
        let mut e = Exposition::new();
        e.gauge("ascy_hotkey_fronted", "Hot keys holding a front slot.", &[], 16);
        e.counter("ascy_hotkey_sampled_total", "Sketch updates.", &[], 4096);
        e.counter("ascy_hotkey_promotions_total", "Promotions.", &[], 16);
        for (result, v) in [("hit", 900u64), ("absent", 40), ("pending", 9)] {
            e.counter(
                "ascy_hotkey_front_reads_total",
                "Front-cache probes by outcome.",
                &[("result", result)],
                v,
            );
        }
        e.counter("ascy_hotkey_delegated_total", "Delegated hot writes.", &[], 77);
        let body = e.finish();
        validate(&body).expect("hotkey families validate");
        assert_eq!(body.matches("# TYPE ascy_hotkey_front_reads_total").count(), 1);
        assert!(body.contains("# TYPE ascy_hotkey_fronted gauge"));
        assert!(body.contains("# TYPE ascy_hotkey_sampled_total counter"));
        assert!(body.contains("ascy_hotkey_front_reads_total{result=\"hit\"} 900"));
    }

    #[test]
    fn validator_rejects_duplicate_series_and_conflicting_types() {
        // Same series emitted twice — e.g. a hotkey counter wired through
        // two code paths — must fail even though each line is well-formed.
        let dup = "# TYPE ascy_hotkey_fills_total counter\n\
                   ascy_hotkey_fills_total 3\nascy_hotkey_fills_total 4\n";
        let err = validate(dup).unwrap_err();
        assert!(err.contains("already emitted"), "{err}");
        let dup_labeled = "# TYPE ascy_hotkey_front_reads_total counter\n\
                           ascy_hotkey_front_reads_total{result=\"hit\"} 1\n\
                           ascy_hotkey_front_reads_total{result=\"hit\"} 2\n";
        assert!(validate(dup_labeled).unwrap_err().contains("already emitted"));
        // Distinct label values are fine.
        let fanout = "# TYPE ascy_hotkey_front_reads_total counter\n\
                      ascy_hotkey_front_reads_total{result=\"hit\"} 1\n\
                      ascy_hotkey_front_reads_total{result=\"absent\"} 2\n";
        validate(fanout).expect("label fan-out is one family");
        // Distinct series whose label values contain '=' and ',' must not
        // collide into one identity: {a="x,b=y"} is not {a="x",b="y"}.
        let tricky = "# TYPE ascy_hotkey_front_reads_total counter\n\
                      ascy_hotkey_front_reads_total{a=\"x,b=y\"} 1\n\
                      ascy_hotkey_front_reads_total{a=\"x\",b=\"y\"} 2\n";
        validate(tricky).expect("structurally distinct label sets are distinct series");
        // Redeclaring a name under a different type (gauge-vs-counter
        // confusion at the TYPE layer) is caught by the duplicate-TYPE rule.
        let conflict = "# TYPE ascy_hotkey_fronted gauge\nascy_hotkey_fronted 1\n\
                        # TYPE ascy_hotkey_fronted counter\nascy_hotkey_fronted 2\n";
        assert!(validate(conflict).unwrap_err().contains("duplicate TYPE"));
    }

    #[test]
    fn validator_rejects_malformed_bodies() {
        for (body, why) in [
            ("", "empty"),
            ("# TYPE ascy_x counter\n", "no samples"),
            ("ascy_x 1\n", "sample precedes TYPE"),
            ("# TYPE ascy_x counter\nascy_x one\n", "bad value"),
            ("# TYPE ascy_x counter\nascy_x{k=\"v\" 1\n", "unterminated labels"),
            ("# TYPE 9bad counter\n9bad 1\n", "bad metric name"),
            (
                "# TYPE ascy_h histogram\nascy_h_bucket{le=\"10\"} 5\n\
                 ascy_h_bucket{le=\"20\"} 3\nascy_h_bucket{le=\"+Inf\"} 5\n\
                 ascy_h_sum 1\nascy_h_count 5\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE ascy_h histogram\nascy_h_bucket{le=\"10\"} 5\n\
                 ascy_h_sum 1\nascy_h_count 5\n",
                "missing +Inf",
            ),
            (
                "# TYPE ascy_h histogram\nascy_h_bucket{le=\"+Inf\"} 4\n\
                 ascy_h_sum 1\nascy_h_count 5\n",
                "+Inf != count",
            ),
        ] {
            assert!(validate(body).is_err(), "{why}: {body:?} must not validate");
        }
    }
}
