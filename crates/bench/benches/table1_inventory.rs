//! Table 1: the algorithm inventory of ASCYLIB.
//!
//! Prints every implemented algorithm with its structure, synchronization
//! family and a smoke-test throughput number, mirroring the rows of Table 1.

use ascylib_bench::{run_entry, workload};
use ascylib_harness::report::{f2, Table};

fn main() {
    let mut table = Table::new(
        "Table 1 — ASCYLIB-RS algorithm inventory",
        &["name", "structure", "type", "async?", "1-thread Mops/s"],
    );
    let w = workload(1024, 10, 1);
    for entry in ascylib::registry::all_algorithms() {
        let result = run_entry(&entry, w);
        table.row(vec![
            entry.name.to_string(),
            entry.structure.to_string(),
            entry.kind.to_string(),
            if entry.asynchronized { "yes" } else { "no" }.to_string(),
            f2(result.mops),
        ]);
    }
    table.print();
    let _ = table.write_csv("table1_inventory");
}
