//! Figure 5: ASCY2 on skip lists (1024 elements, 20% updates).
//!
//! Reports throughput vs threads, power relative to async, mean update
//! latency, and the update-latency distribution, comparing `fraser` against
//! the ASCY1–2 re-engineered `fraser-opt` (plus `pugh` and `herlihy`).

use ascylib::api::StructureKind;
use ascylib_bench::{algorithms, display_name, run_entry, workload};
use ascylib_harness::report::{f2, Table};
use ascylib_harness::{max_threads, thread_sweep, EnergyModel};

fn main() {
    let model = EnergyModel::default();
    let threads = max_threads();

    let mut tput = Table::new(
        "Figure 5a — skip list (1024 elems, 20% upd): throughput (Mops/s) vs threads",
        &["algorithm", "threads", "Mops/s"],
    );
    for entry in algorithms(StructureKind::SkipList) {
        for &t in &thread_sweep() {
            let r = run_entry(&entry, workload(1024, 20, t));
            tput.row(vec![display_name(&entry).to_string(), t.to_string(), f2(r.mops)]);
        }
    }
    tput.print();
    let _ = tput.write_csv("fig5a_throughput");

    let entries = algorithms(StructureKind::SkipList);
    let async_entry = entries.iter().find(|e| e.asynchronized).expect("async baseline");
    let baseline = run_entry(async_entry, workload(1024, 20, threads));
    let mut panel = Table::new(
        "Figure 5b-d — relative power and successful-update latency (ns)",
        &["algorithm", "power/async", "restarts/op", "mean", "p1", "p25", "p50", "p75", "p99"],
    );
    for entry in &entries {
        let r = run_entry(entry, workload(1024, 20, threads));
        let lat = r.successful_update_latency;
        let restarts = r.counters.restarts as f64 / r.total_ops.max(1) as f64;
        panel.row(vec![
            display_name(entry).to_string(),
            f2(model.relative_power(&r, &baseline)),
            f2(restarts),
            f2(lat.mean),
            lat.p1.to_string(),
            lat.p25.to_string(),
            lat.p50.to_string(),
            lat.p75.to_string(),
            lat.p99.to_string(),
        ]);
    }
    panel.print();
    let _ = panel.write_csv("fig5bcd_latency_power");
}
