//! Figure 13 (extension): what moving real payloads costs — value size ×
//! sharding over loopback.
//!
//! The paper's elements are 64-bit `(key, value)` pairs; production KV
//! traffic moves kilobyte-class values, and at some size the bottleneck
//! migrates from synchronization and round trips to **payload movement**
//! (allocator traffic, memcpy, socket bandwidth). This bench sweeps value
//! size from 8 B to 4 KiB over 1 and 4 shards of a blob-valued Fraser skip
//! list served over loopback (closed-loop clients, pipeline depth 16, the
//! paper's 10%-update mix), reporting throughput *and* payload bandwidth:
//!
//! * small values: Mops/s tracks `fig12`'s depth-16 line — the wire and the
//!   structure dominate, bandwidth is noise;
//! * large values: Mops/s falls while MB/s climbs — the run is
//!   bandwidth-bound, and extra shards stop helping because the bottleneck
//!   is no longer the structure.
//!
//! Every row also exercises the blob arena under real churn (10% of ops
//! overwrite/delete, retiring blobs through the ssmem epochs). Emits
//! `BENCH_fig13_values.json` with one machine-readable row per
//! (value size × shards) config.

use std::sync::Arc;

use ascylib::skiplist::FraserOptSkipList;
use ascylib_harness::report::{bandwidth_line, f2, write_json, Table};
use ascylib_harness::{bench_millis, KeyDist, OpMix};
use ascylib_server::loadgen::{self, LoadGenConfig};
use ascylib_server::{BlobOrderedStore, Server, ServerConfig, ValueSize};
use ascylib_shard::BlobMap;

const INITIAL_SIZE: u64 = 4096;
const UPDATE_PCT: u32 = 10;
const DEPTH: usize = 16;

fn connections() -> usize {
    (ascylib_harness::max_threads()).clamp(1, 4)
}

fn run_config(shards: usize, conns: usize, size: usize) -> loadgen::LoadGenResult {
    let map = Arc::new(BlobMap::new(shards, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        BlobOrderedStore::new(Arc::clone(&map)),
        ServerConfig::for_connections(conns),
    )
    .expect("bind ephemeral port");
    let vsize = ValueSize::Fixed(size);
    loadgen::prefill(server.addr(), INITIAL_SIZE, INITIAL_SIZE * 2, vsize, 0xF1613)
        .expect("prefill over the wire");
    let cfg = LoadGenConfig {
        connections: conns,
        duration_ms: bench_millis(),
        mix: OpMix::update(UPDATE_PCT),
        dist: KeyDist::Uniform,
        key_range: INITIAL_SIZE * 2,
        value_size: vsize,
        pipeline_depth: DEPTH,
        ..LoadGenConfig::default()
    };
    let result = loadgen::run(server.addr(), &cfg).expect("loadgen run");
    // The arena must have churned: overwrites/deletes retire blobs.
    let arena = map.total_arena_stats();
    assert!(
        arena.blobs_retired > 0,
        "update traffic must retire displaced blobs ({arena:?})"
    );
    server.join();
    result
}

fn json_row(size: usize, shards: usize, r: &loadgen::LoadGenResult) -> String {
    format!(
        concat!(
            "{{\"value_size\":{},\"shards\":{},\"total_ops\":{},\"mops\":{:.4},",
            "\"read_mbps\":{:.3},\"write_mbps\":{:.3},",
            "\"payload_bytes_read\":{},\"payload_bytes_written\":{},",
            "\"hit_rate\":{:.4},\"errors\":{},\"p50_rtt_ns\":{},\"p99_rtt_ns\":{}}}"
        ),
        size,
        shards,
        r.total_ops,
        r.mops,
        r.read_mbps(),
        r.write_mbps(),
        r.payload_bytes_read,
        r.payload_bytes_written,
        r.hit_rate(),
        r.errors,
        r.batch_rtt.p50,
        r.batch_rtt.p99,
    )
}

fn main() {
    let conns = connections();
    let mut table = Table::new(
        &format!(
            "Figure 13 — value size sweep over loopback, {conns} conns x depth {DEPTH}, \
             {UPDATE_PCT}% upd, N={INITIAL_SIZE}, fraser-opt blob shards"
        ),
        &[
            "value size",
            "shards",
            "Mops/s",
            "read MB/s",
            "write MB/s",
            "p50 RTT us",
            "p99 RTT us",
        ],
    );

    let mut json_rows = Vec::new();
    let mut last_line = String::new();
    for &size in &[8usize, 64, 512, 4096] {
        for &shards in &[1usize, 4] {
            let r = run_config(shards, conns, size);
            assert_eq!(r.errors, 0, "well-formed traffic must not error");
            assert!(r.total_ops > 0, "the burst must serve traffic");
            table.row(vec![
                format!("{size} B"),
                shards.to_string(),
                f2(r.mops),
                f2(r.read_mbps()),
                f2(r.write_mbps()),
                f2(r.batch_rtt.p50 as f64 / 1e3),
                f2(r.batch_rtt.p99 as f64 / 1e3),
            ]);
            json_rows.push(json_row(size, shards, &r));
            last_line = bandwidth_line(
                &format!("{size} B x {shards} shards"),
                r.payload_bytes_read,
                r.payload_bytes_written,
                r.elapsed,
            );
        }
    }

    table.print();
    print!("{last_line}");
    let _ = table.write_csv("fig13_values");
    let path = write_json("fig13_values", &format!("{{\"rows\":[{}]}}", json_rows.join(",")))
        .expect("write BENCH_fig13_values.json");
    println!("\nwrote {}", path.display());

    println!(
        "\nas values grow from 8 B to 4 KiB the op rate falls and payload MB/s climbs:\n\
         the serving bottleneck migrates from round trips and structure traversal to\n\
         payload movement — the regime real KV deployments operate in"
    );
}
