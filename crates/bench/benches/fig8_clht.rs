//! Figure 8: CLHT vs pugh hash table, 4096 elements, varying update rates.
//!
//! The paper runs 20 threads and update rates 0/1/20/100% on five platforms;
//! here the measured host columns are complemented by the projected
//! throughput on each platform profile.

use std::sync::Arc;

use ascylib::api::ConcurrentMap;
use ascylib::hashtable::{ClhtLb, ClhtLf, PughHashTable};
use ascylib_bench::{run_map, workload};
use ascylib_harness::report::{f2, Table};
use ascylib_harness::{max_threads, PlatformProfile};

fn main() {
    let threads = max_threads();
    let rates = [0u32, 1, 20, 100];
    let platforms = PlatformProfile::all();
    let mut table = Table::new(
        "Figure 8 — CLHT vs pugh (4096 elems) across update rates",
        &[
            "algorithm", "upd %", "Mops/s", "transfers/op",
            "Opteron*", "Xeon20*", "Xeon40*", "Tilera*", "T4-4*",
        ],
    );
    for rate in rates {
        let algos: Vec<(&str, Arc<dyn ConcurrentMap>)> = vec![
            ("pugh", Arc::new(PughHashTable::with_buckets(4096)) as Arc<dyn ConcurrentMap>),
            ("clht-lb", Arc::new(ClhtLb::with_capacity(4096))),
            ("clht-lf", Arc::new(ClhtLf::with_capacity(4096))),
        ];
        for (name, map) in algos {
            let r = run_map(map, workload(4096, rate, threads));
            let mut row = vec![
                name.to_string(),
                rate.to_string(),
                f2(r.mops),
                f2(r.transfers_per_op()),
            ];
            for p in platforms.iter().take(5) {
                row.push(f2(p.project_mops(&r, p.hardware_threads.min(20))));
            }
            table.row(row);
        }
    }
    table.print();
    let _ = table.write_csv("fig8_clht");
}
