//! Figure 17 (extension): what a byte budget costs and buys.
//!
//! The cache tier (`ascylib_shard::cache`) turns the blob map into a
//! bounded cache: per-shard byte budgets enforced by CLOCK eviction on the
//! SET path, TTL expiry reclaimed lazily on reads and by a sweep
//! piggybacked on writes, with the reference/TTL/generation metadata
//! riding spare bits of the 64-bit handle word. Three questions, three
//! phases, all against the in-process `BlobMap<FraserOptSkipList>` the
//! stock `kv_server` serves:
//!
//! * **Hit rate vs budget** — sweep the budget over 10% → 200% of a 1 MiB
//!   working set (4096 keys × 256 B) under zipf(0.99) and uniform reads
//!   with miss-reinstall (a read miss refetches and re-`SET`s, as a cache
//!   in front of a backing store would). The functional gate, always
//!   asserted: hit rate is monotone non-decreasing in the budget for both
//!   distributions, and every sweep point ends with `live_bytes` within
//!   budget.
//! * **Budget invariant under churn** — four writer threads churn twice
//!   the working set (mixed plain, leased, and deleted keys) while the
//!   main thread samples the gauges; `live_bytes ≤ budget_bytes` and
//!   `forced == 0` must hold at *every* sample, evictions must engage, and
//!   the short leases must demonstrably expire.
//! * **Overhead when disabled** — interleaved best-of rounds of the same
//!   read-heavy skewed workload over an unbounded (inert-policy) map vs
//!   one with a 2× working-set budget (active bookkeeping, zero
//!   evictions). The budgeted config must stay within
//!   `ASCYLIB_FIG17_MAX_REGRESSION_PCT` (default 3%) of the inert one.
//!
//! `ASCYLIB_FIG17_PERF_GATES=0` downgrades the *timing* gate to a reported
//! number (noisy shared runners, e.g. CI); the functional gates always
//! assert. Emits `fig17_budget.csv` and `BENCH_fig17_budget.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ascylib::skiplist::FraserOptSkipList;
use ascylib_harness::report::{f2, write_json, Table};
use ascylib_harness::{bench_millis, env_or, KeyDist, KeySampler};
use ascylib_shard::{BlobMap, CacheConfig, CacheStatsSnapshot, HotKeyConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const WS_KEYS: u64 = 4096;
const VALUE_LEN: usize = 256;
const WS_BYTES: u64 = WS_KEYS * VALUE_LEN as u64; // 1 MiB working set
const SHARDS: usize = 2;
const SWEEP_OPS: usize = 1 << 17;
const BUDGET_PCTS: [u64; 5] = [10, 25, 50, 100, 200];
const MIN_ROUNDS: usize = 3;
const MAX_ROUNDS: usize = 9;

fn threads() -> usize {
    ascylib_harness::max_threads().clamp(1, 4)
}

fn bounded_map(budget: u64, hot: HotKeyConfig) -> BlobMap<FraserOptSkipList> {
    let cfg = CacheConfig::unbounded().with_budget(budget);
    BlobMap::with_config(SHARDS, hot, cfg, |_| FraserOptSkipList::new())
}

/// Phase A point: prefill the working set through the budget, then serve a
/// read-mostly stream with miss-reinstall. Returns the read hit rate and
/// the final counters. Hot-key fronting is off so the curve isolates the
/// budget (fig16 covers the front cache).
fn hit_rate_at(budget: u64, dist: KeyDist, seed: u64) -> (f64, CacheStatsSnapshot) {
    let map = bounded_map(budget, HotKeyConfig::with_k(0));
    let value = [0xA5u8; VALUE_LEN];
    for k in 1..=WS_KEYS {
        map.set(k, &value);
    }
    let sampler = KeySampler::new(dist, WS_KEYS);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut buf = Vec::with_capacity(VALUE_LEN);
    let (mut reads, mut hits) = (0u64, 0u64);
    for _ in 0..SWEEP_OPS {
        let key = sampler.sample(&mut rng);
        if rng.random_range(0..100u32) < 10 {
            map.set(key, &value);
        } else {
            reads += 1;
            if map.get(key, &mut buf) {
                hits += 1;
            } else {
                // Cache miss: refetch from the (synthetic) backing store.
                map.set(key, &value);
            }
        }
    }
    assert!(reads > 0);
    (hits as f64 / reads as f64, map.cache_stats())
}

/// Phase B: four writers churn 2× the working set — plain sets, short
/// leases, deletes — while the main thread polls the gauges. Every sample
/// must satisfy the budget invariant.
fn churn_invariant() -> (u64, CacheStatsSnapshot) {
    let budget = WS_BYTES / 4;
    let map = Arc::new(bounded_map(budget, HotKeyConfig::default()));
    let value = [0xB7u8; VALUE_LEN];
    for k in 1..=WS_KEYS {
        map.set(k, &value);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xF17B ^ t.wrapping_mul(0x9E37));
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let key = 1 + rng.random_range(0..WS_KEYS * 2);
                        match rng.random_range(0..16u32) {
                            0 => {
                                map.del(key);
                            }
                            1 | 2 => {
                                // Short leases: expired under the churn and
                                // reclaimed by the piggybacked sweep.
                                map.set_ex(key, &value, 1 + rng.random_range(0..5u64));
                            }
                            _ => {
                                map.set(key, &value);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_millis(bench_millis().max(100));
    let mut samples = 0u64;
    while Instant::now() < deadline {
        let c = map.cache_stats();
        assert_eq!(c.budget_bytes, budget, "budget gauge drifted");
        assert!(
            c.live_bytes <= c.budget_bytes,
            "sample {samples}: live {} B over the {} B budget",
            c.live_bytes,
            c.budget_bytes
        );
        assert_eq!(c.forced, 0, "256 B values must never need a forced admission: {c:?}");
        samples += 1;
        std::thread::sleep(Duration::from_micros(500));
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("churn writer exits cleanly");
    }
    let stats = map.cache_stats();
    (samples, stats)
}

/// Phase C round: the fig16-style read-heavy skewed burst over a prefilled
/// map, budget machinery either inert (no budget) or active-but-idle (2×
/// working set, never evicts). Returns Mops/s.
fn overhead_round(budgeted: bool, seed: u64) -> f64 {
    let cfg = if budgeted {
        CacheConfig::unbounded().with_budget(2 * WS_BYTES)
    } else {
        CacheConfig::unbounded()
    };
    let map =
        BlobMap::with_config(SHARDS, HotKeyConfig::with_k(0), cfg, |_| FraserOptSkipList::new());
    let value = [0x5Au8; VALUE_LEN];
    for k in 1..=WS_KEYS {
        map.set(k, &value);
    }
    let map = Arc::new(map);
    let stop = Arc::new(AtomicBool::new(false));
    let n = threads();
    let workers: Vec<_> = (0..n)
        .map(|t| {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let sampler = KeySampler::new(KeyDist::Zipfian { theta: 0.99 }, WS_KEYS);
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
                let stream: Vec<(u64, bool)> = (0..SWEEP_OPS)
                    .map(|_| (sampler.sample(&mut rng), rng.random_range(0..100u32) < 2))
                    .collect();
                let mut buf = Vec::with_capacity(VALUE_LEN);
                let mut payload = [0u8; VALUE_LEN];
                let mut ops = 0u64;
                let mut at = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let (key, write) = stream[at];
                        at = (at + 1) % SWEEP_OPS;
                        if write {
                            payload[0] = payload[0].wrapping_add(1);
                            map.set(key, &payload);
                        } else {
                            let _ = map.get(key, &mut buf);
                        }
                        ops += 1;
                    }
                }
                ops
            })
        })
        .collect();
    let started = Instant::now();
    std::thread::sleep(Duration::from_millis(bench_millis()));
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed();
    let mut ops = 0u64;
    for w in workers {
        ops += w.join().expect("worker exits cleanly");
    }
    assert!(ops > 0, "burst performed no operations");
    if budgeted {
        let c = map.cache_stats();
        assert_eq!(c.evictions, 0, "a 2x working-set budget must never evict: {c:?}");
    }
    ops as f64 / elapsed.as_secs_f64() / 1e6
}

fn main() {
    let max_regression = env_or("ASCYLIB_FIG17_MAX_REGRESSION_PCT", 3) as f64;
    let perf_gates = env_or("ASCYLIB_FIG17_PERF_GATES", 1) != 0;
    let n = threads();

    // Phase A: hit rate vs budget, both distributions.
    let dists = [
        ("zipf(0.99)", KeyDist::Zipfian { theta: 0.99 }),
        ("uniform", KeyDist::Uniform),
    ];
    let mut table = Table::new(
        &format!(
            "Figure 17 — bounded-memory cache tier, in-process \
             BlobMap<FraserOptSkipList>, WS {WS_KEYS} keys x {VALUE_LEN} B, \
             {SHARDS} shards, {n} threads for the churn/overhead phases"
        ),
        &["distribution", "budget %WS", "hit rate", "evictions", "live/budget"],
    );
    let mut curves = Vec::new();
    for (label, dist) in dists {
        let mut prev = -1.0f64;
        for (i, pct) in BUDGET_PCTS.iter().enumerate() {
            let budget = WS_BYTES * pct / 100;
            let (rate, c) = hit_rate_at(budget, dist, 0xF17A + i as u64);
            assert!(
                c.live_bytes <= c.budget_bytes && c.forced == 0,
                "{label} @{pct}%: budget invariant violated: {c:?}"
            );
            if *pct < 100 {
                assert!(
                    c.evictions > 0,
                    "{label} @{pct}%: an under-provisioned budget must evict: {c:?}"
                );
            }
            // Monotone in the budget: more memory never hurts the hit
            // rate (1% slack for CLOCK's approximation noise).
            assert!(
                rate + 0.01 >= prev,
                "{label}: hit rate fell from {prev:.4} to {rate:.4} when the budget \
                 grew to {pct}% of the working set"
            );
            prev = prev.max(rate);
            table.row(vec![
                label.into(),
                pct.to_string(),
                f2(rate * 100.0),
                c.evictions.to_string(),
                format!("{}/{}", c.live_bytes, c.budget_bytes),
            ]);
            curves.push(format!(
                concat!(
                    "{{\"dist\":\"{}\",\"budget_pct\":{},\"budget_bytes\":{},",
                    "\"hit_rate\":{:.4},\"evictions\":{},\"live_bytes\":{},",
                    "\"expired\":{}}}"
                ),
                label, pct, budget, rate, c.evictions, c.live_bytes, c.expired(),
            ));
        }
    }

    // Phase B: the budget holds at every sampled point under churn.
    let (samples, churn) = churn_invariant();
    assert!(samples > 0, "the churn phase sampled nothing");
    assert!(churn.evictions > 0, "churn past the budget must evict: {churn:?}");
    assert!(churn.expired() > 0, "short leases must expire under churn: {churn:?}");

    // Phase C: interleaved best-of rounds, budget machinery idle vs inert.
    let _ = overhead_round(true, 0xF17);
    let _ = overhead_round(false, 0xF17);
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    let mut rounds = 0usize;
    while rounds < MAX_ROUNDS {
        let seed = 0xF17_0000 + rounds as u64;
        best_on = best_on.max(overhead_round(true, seed));
        best_off = best_off.max(overhead_round(false, seed));
        rounds += 1;
        if rounds >= MIN_ROUNDS && (best_off - best_on) / best_off * 100.0 <= max_regression {
            break;
        }
    }
    let regression_pct = (best_off - best_on) / best_off.max(f64::MIN_POSITIVE) * 100.0;
    table.row(vec![
        "overhead".into(),
        "200 (idle)".into(),
        format!("{:.2} vs {:.2} Mops/s", best_on, best_off),
        "0".into(),
        format!("{regression_pct:.2}% regression"),
    ]);
    table.print();
    let _ = table.write_csv("fig17_budget");

    let json = format!(
        concat!(
            "{{\"threads\":{},\"ws_keys\":{},\"value_len\":{},\"shards\":{},",
            "\"curves\":[{}],",
            "\"churn\":{{\"samples\":{},\"budget_bytes\":{},\"live_bytes\":{},",
            "\"evictions\":{},\"expired_lazy\":{},\"expired_swept\":{},\"forced\":{}}},",
            "\"overhead\":{{\"mops_budgeted\":{:.4},\"mops_inert\":{:.4},",
            "\"regression_pct\":{:.4},\"rounds\":{},\"max_regression_pct\":{:.1},",
            "\"gated\":{}}}}}"
        ),
        n,
        WS_KEYS,
        VALUE_LEN,
        SHARDS,
        curves.join(","),
        samples,
        churn.budget_bytes,
        churn.live_bytes,
        churn.evictions,
        churn.expired_lazy,
        churn.expired_swept,
        churn.forced,
        best_on,
        best_off,
        regression_pct,
        rounds,
        max_regression,
        perf_gates,
    );
    let _ = write_json("fig17_budget", &json);

    if perf_gates {
        assert!(
            regression_pct <= max_regression,
            "idle budget machinery costs {regression_pct:.2}%, over the \
             {max_regression:.0}% budget ({best_on:.3} vs {best_off:.3} Mops/s)"
        );
    }
    println!(
        "\nchurn: {} samples all within budget ({} evictions, {} expired); \
         idle-machinery regression {regression_pct:.2}% (budget {max_regression:.0}%{})",
        samples,
        churn.evictions,
        churn.expired(),
        if perf_gates { "" } else { ", report-only" },
    );
}
