//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! * ASCY1: `harris` vs `harris-opt` (cleanup in searches or not).
//! * ASCY2: `fraser` vs `fraser-opt`.
//! * Memory reclamation: `urcu` (wait-for-readers) vs `urcu-ssmem`.
//! * SSMEM garbage threshold sweep on CLHT-LB.

use std::sync::Arc;

use ascylib::api::ConcurrentMap;
use ascylib::hashtable::ClhtLb;
use ascylib_bench::{run_entry, run_map, workload};
use ascylib_harness::max_threads;
use ascylib_harness::report::{f2, Table};

fn main() {
    let threads = max_threads();

    let mut table = Table::new(
        "Ablation — ASCY pattern on/off pairs (Mops/s at max threads)",
        &["pair", "without ASCY", "with ASCY", "improvement %"],
    );
    let pairs = [
        ("harris vs harris-opt (list, 1024, 5% upd)", "ll-harris", "ll-harris-opt", 1024usize, 5u32),
        ("fraser vs fraser-opt (skiplist, 1024, 20% upd)", "sl-fraser", "sl-fraser-opt", 1024, 20),
        ("urcu wait vs ssmem (hash, 4096, 20% upd)", "ht-urcu", "ht-urcu-ssmem", 4096, 20),
    ];
    for (label, before, after, size, upd) in pairs {
        let b = run_entry(&ascylib::registry::by_name(before).unwrap(), workload(size, upd, threads));
        let a = run_entry(&ascylib::registry::by_name(after).unwrap(), workload(size, upd, threads));
        let improvement = (a.throughput / b.throughput.max(1.0) - 1.0) * 100.0;
        table.row(vec![label.to_string(), f2(b.mops), f2(a.mops), f2(improvement)]);
    }
    table.print();
    let _ = table.write_csv("ablation_ascy_pairs");

    let mut gc = Table::new(
        "Ablation — SSMEM garbage threshold (CLHT-LB, 4096 elems, 20% upd)",
        &["gc threshold", "Mops/s"],
    );
    for threshold in [64usize, 128, 512, 2048] {
        ascylib_ssmem::set_gc_threshold(threshold);
        let map: Arc<dyn ConcurrentMap> = Arc::new(ClhtLb::with_capacity(8192));
        let r = run_map(map, workload(4096, 20, threads));
        gc.row(vec![threshold.to_string(), f2(r.mops)]);
    }
    ascylib_ssmem::set_gc_threshold(512);
    gc.print();
    let _ = gc.write_csv("ablation_gc_threshold");
}
