//! Figure 7: ASCY4 on BSTs (2048 elements, 20% updates).
//!
//! Reports throughput vs threads, power relative to async, update latency,
//! the latency distribution of successful operations, and — the §5/ASCY4
//! metric — atomic operations per successful update (≈2 for `natarajan` and
//! BST-TK, more for `ellen`).

use ascylib::api::StructureKind;
use ascylib_bench::{algorithms, display_name, run_entry, workload};
use ascylib_harness::report::{f2, Table};
use ascylib_harness::{max_threads, thread_sweep, EnergyModel};

fn main() {
    let model = EnergyModel::default();
    let threads = max_threads();

    let mut tput = Table::new(
        "Figure 7a — BST (2048 elems, 20% upd): throughput (Mops/s) vs threads",
        &["algorithm", "threads", "Mops/s"],
    );
    for entry in algorithms(StructureKind::Bst) {
        for &t in &thread_sweep() {
            let r = run_entry(&entry, workload(2048, 20, t));
            tput.row(vec![display_name(&entry).to_string(), t.to_string(), f2(r.mops)]);
        }
    }
    tput.print();
    let _ = tput.write_csv("fig7a_throughput");

    let entries = algorithms(StructureKind::Bst);
    let async_entry = entries
        .iter()
        .find(|e| e.name == "bst-async-ext")
        .expect("async baseline");
    let baseline = run_entry(async_entry, workload(2048, 20, threads));
    let mut panel = Table::new(
        "Figure 7b-d — relative power, atomics/update, successful-op latency (ns)",
        &["algorithm", "power/async", "atomics/succ-upd", "mean", "p1", "p25", "p50", "p75", "p99"],
    );
    for entry in &entries {
        let r = run_entry(entry, workload(2048, 20, threads));
        let lat = r.successful_update_latency;
        panel.row(vec![
            display_name(entry).to_string(),
            f2(model.relative_power(&r, &baseline)),
            f2(r.atomics_per_successful_update()),
            f2(lat.mean),
            lat.p1.to_string(),
            lat.p25.to_string(),
            lat.p50.to_string(),
            lat.p75.to_string(),
            lat.p99.to_string(),
        ]);
    }
    panel.print();
    let _ = panel.write_csv("fig7bcd_latency_power");
}
