//! Figure 10 (extension): sharding under uniform vs. skewed traffic.
//!
//! The paper's figures drive a single structure with uniform keys. This
//! bench layers `ascylib-shard` on top and replays the same operation mix
//! under uniform and Zipfian(0.99) key draws, comparing each structure
//! against a sharded deployment of itself:
//!
//! * **Harris list** — O(n) traversals: sharding divides every parse phase's
//!   length by the shard count, so it should win by roughly that factor.
//! * **CLHT** — already O(1) and cache-friendly: sharding mostly splits the
//!   coherence domain; the interesting question is whether the routing layer
//!   costs anything when the structure was not the bottleneck.
//!
//! A final panel prints the per-shard operation histogram under skew: the
//! hash router spreads the Zipfian head across shards, which is what keeps
//! a hot key-*range* from becoming a hot *shard*.

use std::sync::Arc;

use ascylib::hashtable::ClhtLb;
use ascylib::list::HarrisList;
use ascylib_bench::run_map;
use ascylib_harness::report::{f2, histogram, Table};
use ascylib_harness::{bench_millis, max_threads, KeyDist, WorkloadBuilder};
use ascylib_shard::ShardedMap;

const SHARDS: usize = 8;

fn dists() -> Vec<KeyDist> {
    vec![KeyDist::Uniform, KeyDist::Zipfian { theta: 0.99 }]
}

fn workload(initial_size: usize, dist: KeyDist, threads: usize) -> ascylib_harness::Workload {
    WorkloadBuilder::new()
        .initial_size(initial_size)
        .update_percent(10)
        .threads(threads)
        .duration_ms(bench_millis())
        .key_dist(dist)
        .build()
}

fn main() {
    let threads = max_threads();
    let mut table = Table::new(
        &format!("Figure 10 — sharded ({SHARDS} shards) vs unsharded, {threads} threads, 10% upd"),
        &["structure", "dist", "unsharded Mops/s", "sharded Mops/s", "speedup"],
    );

    // Harris list: small N (every op walks the list, the paper uses
    // 1024–4096 for lists); CLHT: the paper's 8192-element setting.
    let list_size = 2048;
    let clht_size = 8192;

    for dist in dists() {
        let w = workload(list_size, dist, threads);
        let unsharded = run_map(Arc::new(HarrisList::new()), w);
        let sharded = run_map(Arc::new(ShardedMap::new(SHARDS, |_| HarrisList::new())), w);
        table.row(vec![
            "ll-harris".into(),
            dist.to_string(),
            f2(unsharded.mops),
            f2(sharded.mops),
            f2(sharded.mops / unsharded.mops.max(f64::MIN_POSITIVE)),
        ]);
    }

    for dist in dists() {
        let w = workload(clht_size, dist, threads);
        let unsharded = run_map(Arc::new(ClhtLb::with_capacity(clht_size * 2)), w);
        let sharded = run_map(
            Arc::new(ShardedMap::new(SHARDS, |_| ClhtLb::with_capacity(clht_size * 2 / SHARDS))),
            w,
        );
        table.row(vec![
            "ht-clht-lb".into(),
            dist.to_string(),
            f2(unsharded.mops),
            f2(sharded.mops),
            f2(sharded.mops / unsharded.mops.max(f64::MIN_POSITIVE)),
        ]);
    }

    table.print();
    let _ = table.write_csv("fig10_sharding");

    // Per-shard load under skew: run the skewed mix once more against a
    // fresh sharded CLHT and show where the requests landed.
    let w = workload(clht_size, KeyDist::Zipfian { theta: 0.99 }, threads);
    let map = Arc::new(ShardedMap::new(SHARDS, |_| ClhtLb::with_capacity(clht_size * 2 / SHARDS)));
    let _ = run_map(map.clone(), w);
    let entries: Vec<(String, f64)> = map
        .shard_stats()
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("shard-{i}"), s.operations() as f64))
        .collect();
    print!("{}", histogram("zipf(0.99) per-shard operations (hash routing spreads the head)", &entries, 40));
}
