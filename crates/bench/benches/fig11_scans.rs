//! Figure 11 (extension): range-scan workloads over the ordered structures.
//!
//! The paper's figures stop at the three point operations; this bench opens
//! the YCSB-E workload family (95% short range scans, 5% inserts) that the
//! `OrderedMap` layer makes expressible, and replays it under uniform and
//! Zipfian(0.99) key draws:
//!
//! * **Harris list** — every scan start is an O(n) walk to the cursor, so
//!   scans amortize poorly; the list is the baseline the log-structures
//!   should beat.
//! * **Fraser skip list** — O(log n) positioning plus a level-0 walk: the
//!   structure RocksDB-style memtables actually use for this mix.
//! * **BST-TK** — O(log n) positioning plus an in-order leaf walk with
//!   subtree pruning.
//!
//! A final panel prints the scan-length distribution and scan-latency
//! percentiles for the skip list, feeding the report layer's histogram
//! emitters.

use std::sync::Arc;

use ascylib::bst::BstTk;
use ascylib::list::HarrisList;
use ascylib::ordered::OrderedMap;
use ascylib::skiplist::FraserSkipList;
use ascylib_bench::{run_ordered, scan_workload};
use ascylib_harness::report::{distribution_line, f2, scan_length_histogram, Table};
use ascylib_harness::{max_threads, KeyDist, OpMix};

fn dists() -> Vec<KeyDist> {
    vec![KeyDist::Uniform, KeyDist::Zipfian { theta: 0.99 }]
}

/// One bench configuration: display name, initial size, fresh-map factory.
type Config = (&'static str, usize, Box<dyn Fn() -> Arc<dyn OrderedMap>>);

fn main() {
    let threads = max_threads();
    let mix = OpMix::ycsb_e();
    let mut table = Table::new(
        &format!(
            "Figure 11 — YCSB-E (95% scan/5% insert, max {} keys), {threads} threads",
            mix.scan_len
        ),
        &["structure", "dist", "Mops/s", "scans/s", "keys/scan", "scan p50 ns", "scan p99 ns"],
    );

    // Lists use the paper's small-N setting (every scan start walks the
    // chain); the log-depth structures use the 4096-element default.
    let configs: Vec<Config> = vec![
        ("ll-harris", 512, Box::new(|| Arc::new(HarrisList::new()))),
        ("sl-fraser", 4096, Box::new(|| Arc::new(FraserSkipList::new()))),
        ("bst-tk", 4096, Box::new(|| Arc::new(BstTk::new()))),
    ];

    let mut fraser_sample = None;
    for (name, size, make) in &configs {
        for dist in dists() {
            let w = scan_workload(*size, mix, dist, threads);
            let r = run_ordered(make(), w);
            table.row(vec![
                (*name).into(),
                dist.to_string(),
                f2(r.mops),
                f2(r.scan_throughput()),
                f2(r.keys_per_scan()),
                r.scan_latency.p50.to_string(),
                r.scan_latency.p99.to_string(),
            ]);
            if *name == "sl-fraser" && dist == KeyDist::Uniform {
                fraser_sample = Some(r);
            }
        }
    }

    table.print();
    let _ = table.write_csv("fig11_scans");

    // Scan-length distribution + latency percentiles for one configuration:
    // the report layer prints the keys-returned histogram next to the
    // latency stats.
    if let Some(r) = fraser_sample {
        print!(
            "{}",
            scan_length_histogram("fraser / uniform: keys returned per scan", &r.scan_length_samples, 40)
        );
        print!("{}", distribution_line("scan length", "keys", &r.scan_length));
        print!("{}", distribution_line("scan latency", "ns", &r.scan_latency));
    }
}
