//! Figure 15 (extension): what always-on telemetry costs.
//!
//! The serving tier counts **every** request exactly (per-family ops,
//! hit/miss) and samples service-time histograms and phase timings
//! (`ServerConfig::telemetry`, default on). This bench replays the fig12 loopback workload — the
//! paper's 10%-update mix over a sharded CLHT, closed-loop pipelined
//! clients — three times per round, interleaved so thermal and cache drift
//! hits every config equally: telemetry on, telemetry on **with one live
//! `MONITOR` subscriber** draining the sampled trace stream for the whole
//! burst, and telemetry off. Best-of-rounds throughput per config feeds
//! the headline numbers:
//!
//! ```text
//! overhead% = (off_mops - cfg_mops) / off_mops * 100
//! ```
//!
//! Both observed configs must stay under the budget, and the subscriber
//! must actually have received trace events — a silent stream would make
//! the monitored number meaningless.
//!
//! The recording hot path bumps exact per-family counters for every
//! request and *samples* service time with calibrated TSC reading pairs
//! (first and every 8th slot of a pipelined batch; multi-key/scan verbs
//! and depth-1 traffic always timed) into cache-padded single-writer
//! blocks, so the bench **asserts** the overhead stays under
//! `ASCYLIB_FIG15_MAX_OVERHEAD_PCT` (default 3%).
//!
//! Scheduling noise on a loaded (or single-core) host can depress any one
//! trial by far more than the recording cost, and it only ever *deflates*
//! throughput — so each config's best trial estimates its true capacity
//! ceiling, and extra rounds sharpen both ceilings without hiding real
//! overhead. The bench therefore runs a discarded warmup round, then at
//! least `MIN_ROUNDS` measured rounds, continuing up to `MAX_ROUNDS` only
//! while the running estimate still exceeds the budget: a genuinely
//! over-budget recording path fails every round, while a noisy-but-cheap
//! one converges. The machine-readable trajectory
//! (`BENCH_fig15_observability.json`) embeds the server's full-resolution
//! request and per-phase histograms (`report::embed_histograms`), so
//! downstream tooling can recompute any percentile.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ascylib::hashtable::ClhtLb;
use ascylib_harness::report::{embed_histograms, f2, write_json, Table};
use ascylib_harness::{bench_millis, env_or, KeyDist, OpMix};
use ascylib_server::loadgen::{self, LoadGenConfig, LoadGenResult};
use ascylib_server::{
    BlobStore, Client, Phase, Server, ServerConfig, TelemetrySnapshot, ValueSize,
};
use ascylib_shard::BlobMap;

const INITIAL_SIZE: usize = 8192;
const UPDATE_PCT: u32 = 10;
const DEPTH: usize = 16;
const MIN_ROUNDS: usize = 3;
const MAX_ROUNDS: usize = 9;

/// The watcher subscribes at `MONITOR 32` — every 32nd published trace
/// event. That is the realistic operator posture (the sampling knob exists
/// precisely to bound observation cost); an unsampled `MONITOR` watch of a
/// saturated loopback serializes the stream through one subscriber socket
/// and measures that socket, not the recording layer.
const MONITOR_SAMPLE: u64 = 32;

/// Same payload size as fig12, so the two figures' loopback panels compare.
const VALUE_SIZE: ValueSize = ValueSize::Fixed(8);

fn connections() -> usize {
    (ascylib_harness::max_threads()).clamp(1, 4)
}

/// One fig12-shaped loopback run with telemetry on or off, optionally
/// watched by one live `MONITOR` subscriber draining the trace stream for
/// the whole burst. Returns the client-side result, the server's own
/// telemetry view (empty when recording was off), and the trace events the
/// subscriber received (0 when unmonitored).
fn run_once(telemetry: bool, monitored: bool, conns: usize) -> (LoadGenResult, TelemetrySnapshot, u64) {
    let map = Arc::new(BlobMap::new(2, |_| ClhtLb::with_capacity(INITIAL_SIZE)));
    let server = Server::start(
        "127.0.0.1:0",
        BlobStore::new(map),
        ServerConfig { telemetry, ..ServerConfig::for_connections(conns) },
    )
    .expect("bind ephemeral port");
    loadgen::prefill(
        server.addr(),
        INITIAL_SIZE as u64,
        INITIAL_SIZE as u64 * 2,
        VALUE_SIZE,
        0xF1615,
    )
    .expect("prefill over the wire");
    let watcher = monitored.then(|| {
        let mut w = Client::connect(server.addr()).expect("monitor subscriber connects");
        w.monitor(Some(MONITOR_SAMPLE)).expect("MONITOR subscribes");
        w.set_timeout(Some(Duration::from_millis(20))).expect("watch timeout");
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || -> u64 {
            let mut seen = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                match w.monitor_next() {
                    Ok(_) => seen += 1,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) => {}
                    Err(_) => break,
                }
            }
            let _ = w.set_timeout(Some(Duration::from_millis(500)));
            let _ = w.quit();
            seen
        });
        (stop, handle)
    });
    let cfg = LoadGenConfig {
        connections: conns,
        duration_ms: bench_millis(),
        mix: OpMix::update(UPDATE_PCT),
        dist: KeyDist::Uniform,
        key_range: INITIAL_SIZE as u64 * 2,
        value_size: VALUE_SIZE,
        pipeline_depth: DEPTH,
        ..LoadGenConfig::default()
    };
    let result = loadgen::run(server.addr(), &cfg).expect("loadgen run");
    assert_eq!(result.errors, 0, "well-formed traffic must not error");
    let events = match watcher {
        Some((stop, handle)) => {
            stop.store(true, Ordering::Relaxed);
            handle.join().expect("monitor watcher thread")
        }
        None => 0,
    };
    let snap = server.telemetry();
    server.join();
    (result, snap, events)
}

fn main() {
    let conns = connections();
    let max_overhead = env_or("ASCYLIB_FIG15_MAX_OVERHEAD_PCT", 3) as f64;

    // Warm the page cache, allocator pools, and branch predictors outside
    // the measured window (all three configs, so none inherits an
    // advantage).
    let _ = run_once(true, false, conns);
    let _ = run_once(true, true, conns);
    let _ = run_once(false, false, conns);

    // Interleave the configs across rounds so drift is shared; keep the
    // best of each (the least-disturbed run is the honest cost estimate —
    // noise only depresses throughput, so extra rounds sharpen the ceiling
    // without masking real recording cost).
    let mut best_on: Option<(LoadGenResult, TelemetrySnapshot)> = None;
    let mut best_mon: Option<LoadGenResult> = None;
    let mut best_off: Option<LoadGenResult> = None;
    let mut monitor_events = 0u64;
    let mut rounds = 0usize;
    let overhead = |cfg_mops: f64, off_mops: f64| {
        (off_mops - cfg_mops) / off_mops.max(f64::MIN_POSITIVE) * 100.0
    };
    while rounds < MAX_ROUNDS {
        let (on, snap, _) = run_once(true, false, conns);
        match &best_on {
            Some((b, _)) if b.mops >= on.mops => {}
            _ => best_on = Some((on, snap)),
        }
        let (mon, _, events) = run_once(true, true, conns);
        monitor_events += events;
        match &best_mon {
            Some(b) if b.mops >= mon.mops => {}
            _ => best_mon = Some(mon),
        }
        let (off, _, _) = run_once(false, false, conns);
        match &best_off {
            Some(b) if b.mops >= off.mops => {}
            _ => best_off = Some(off),
        }
        rounds += 1;
        if rounds >= MIN_ROUNDS {
            let on_mops = best_on.as_ref().map(|(b, _)| b.mops).unwrap_or(0.0);
            let mon_mops = best_mon.as_ref().map(|b| b.mops).unwrap_or(0.0);
            let off_mops = best_off.as_ref().map(|b| b.mops).unwrap_or(0.0);
            if overhead(on_mops, off_mops) <= max_overhead
                && overhead(mon_mops, off_mops) <= max_overhead
            {
                break;
            }
        }
    }
    let (on, snap) = best_on.expect("at least one round");
    let mon = best_mon.expect("at least one round");
    let off = best_off.expect("at least one round");

    let overhead_pct = overhead(on.mops, off.mops);
    let monitored_pct = overhead(mon.mops, off.mops);
    let sl = on.server_latency.expect("telemetry-on run scrapes itself");
    assert!(
        off.server_latency.is_none(),
        "telemetry off must leave nothing to scrape"
    );

    let mut table = Table::new(
        &format!(
            "Figure 15 — telemetry overhead, fig12 loopback workload, {conns} conns, \
             depth {DEPTH}, {UPDATE_PCT}% upd, N={INITIAL_SIZE}, best of {rounds} rounds"
        ),
        &[
            "telemetry",
            "Mops/s",
            "batch p50 RTT us",
            "server p50 us",
            "server p99 us",
        ],
    );
    table.row(vec![
        "on".into(),
        f2(on.mops),
        f2(on.batch_rtt.p50 as f64 / 1e3),
        f2(sl.p50_ns as f64 / 1e3),
        f2(sl.p99_ns as f64 / 1e3),
    ]);
    table.row(vec![
        "on+monitor".into(),
        f2(mon.mops),
        f2(mon.batch_rtt.p50 as f64 / 1e3),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "off".into(),
        f2(off.mops),
        f2(off.batch_rtt.p50 as f64 / 1e3),
        "-".into(),
        "-".into(),
    ]);
    table.print();
    let _ = table.write_csv("fig15_observability");
    println!(
        "\nrecording overhead: {overhead_pct:.2}% bare, {monitored_pct:.2}% with one \
         MONITOR subscriber ({monitor_events} trace events streamed; budget \
         {max_overhead:.0}%)"
    );

    // Machine-readable trajectory with the full-resolution server-side
    // histograms embedded (bucket upper bound, count pairs).
    let requests = snap.data_requests(); // merged histogram over data families
    let base = format!(
        concat!(
            "{{\"connections\":{},\"pipeline_depth\":{},\"update_pct\":{},",
            "\"initial_size\":{},\"rounds\":{},",
            "\"mops_on\":{:.4},\"mops_monitored\":{:.4},\"mops_off\":{:.4},",
            "\"overhead_pct\":{:.4},\"monitored_overhead_pct\":{:.4},",
            "\"monitor_events\":{},",
            "\"server_request_count\":{},\"server_p50_ns\":{},\"server_p99_ns\":{}}}"
        ),
        conns,
        DEPTH,
        UPDATE_PCT,
        INITIAL_SIZE,
        rounds,
        on.mops,
        mon.mops,
        off.mops,
        overhead_pct,
        monitored_pct,
        monitor_events,
        sl.count,
        sl.p50_ns,
        sl.p99_ns,
    );
    let req_buckets = requests.nonzero_buckets();
    let phase_buckets: Vec<(String, Vec<(u64, u64)>)> = Phase::ALL
        .iter()
        .map(|p| {
            (
                format!("phase_{}_ns", p.name()),
                snap.phases[*p as usize].nonzero_buckets(),
            )
        })
        .collect();
    let mut named: Vec<(&str, &[(u64, u64)])> = vec![("request_ns", &req_buckets)];
    for (name, buckets) in &phase_buckets {
        named.push((name.as_str(), buckets.as_slice()));
    }
    let _ = write_json("fig15_observability", &embed_histograms(&base, &named));

    assert!(
        sl.count >= on.total_ops,
        "the server must have counted every answered request"
    );
    assert!(
        overhead_pct <= max_overhead,
        "telemetry overhead {overhead_pct:.2}% exceeds the {max_overhead:.0}% budget \
         (on {:.3} vs off {:.3} Mops/s)",
        on.mops,
        off.mops,
    );
    assert!(
        monitored_pct <= max_overhead,
        "telemetry + one MONITOR subscriber costs {monitored_pct:.2}%, over the \
         {max_overhead:.0}% budget (monitored {:.3} vs off {:.3} Mops/s)",
        mon.mops,
        off.mops,
    );
    assert!(
        monitor_events > 0,
        "the MONITOR subscriber must have received at least one trace event"
    );
}
