//! Figure 14 (extension): connection-count sweep under open-loop load —
//! the event-driven tier's scaling axis.
//!
//! The thread-per-connection design died at `workers` concurrent clients;
//! the event-driven refactor decouples connections from threads. This
//! bench holds the *offered load* fixed (`ASCYLIB_RATE` ops/s aggregate,
//! Poisson arrivals by default) and sweeps how many connections that load
//! is spread across — 10 → 10,000 — against one loopback server. Because
//! the load generator is **open-loop**, every operation's latency is
//! measured from its *intended* send time: if the server (or its event
//! loop) stalls as connections pile up, the stall lands in the reported
//! tail percentiles instead of silently vanishing into a slowed-down
//! client (coordinated omission).
//!
//! What to look for:
//!
//! * throughput pinned at the offered rate across the whole sweep — the
//!   readiness loop really does hold thousands of mostly-idle connections
//!   for free;
//! * p50 flat, tails (p999/p9999) growing only modestly with connection
//!   count — dispatch cost, not head-of-line blocking;
//! * `unanswered` ≈ 0 — nothing scheduled was abandoned.
//!
//! The sweep is capped by `RLIMIT_NOFILE` (each connection costs a client
//! *and* a server descriptor) and by `ASCYLIB_MAX_CONNS`. Short default
//! bursts leave p999 under-resolved (the JSON flags resolution); raise
//! `ASCYLIB_BENCH_MILLIS` and/or `ASCYLIB_RATE` for publication-grade
//! tails. Emits `BENCH_fig14_connections.json` with one row per
//! connection count.

use std::sync::Arc;

use ascylib::skiplist::FraserOptSkipList;
use ascylib_harness::report::{f2, write_json, Table};
use ascylib_harness::{bench_millis, env_or, KeyDist, OpMix};
use ascylib_server::loadgen::{self, Arrival, LoadGenConfig, LoadMode};
use ascylib_server::{BlobOrderedStore, Server, ServerConfig, ValueSize};
use ascylib_shard::BlobMap;

const INITIAL_SIZE: u64 = 4096;
const UPDATE_PCT: u32 = 10;
const VALUE_BYTES: usize = 64;

/// The sweep, capped so client + server descriptors fit the fd limit with
/// headroom for listeners, pollers, and the runtime's own files.
fn sweep() -> Vec<usize> {
    let _ = polling::raise_fd_limit();
    let fd_cap = match polling::fd_limit() {
        Ok((soft, _hard)) => ((soft.saturating_sub(256)) / 2) as usize,
        Err(_) => 1024,
    };
    let user_cap = env_or("ASCYLIB_MAX_CONNS", 10_000) as usize;
    let cap = fd_cap.min(user_cap).max(1);
    let mut points: Vec<usize> =
        [10usize, 100, 1_000, 10_000].iter().copied().filter(|&c| c <= cap).collect();
    if points.is_empty() || *points.last().unwrap() < cap.min(10_000) {
        points.push(cap.min(10_000));
    }
    points.dedup();
    points
}

fn run_config(conns: usize, rate: f64) -> loadgen::LoadGenResult {
    let map = Arc::new(BlobMap::new(4, |_| FraserOptSkipList::new()));
    let server = Server::start(
        "127.0.0.1:0",
        BlobOrderedStore::new(map),
        ServerConfig::for_connections(conns),
    )
    .expect("bind ephemeral port");
    loadgen::prefill(
        server.addr(),
        INITIAL_SIZE,
        INITIAL_SIZE * 2,
        ValueSize::Fixed(VALUE_BYTES),
        0xF1614,
    )
    .expect("prefill over the wire");
    let cfg = LoadGenConfig {
        connections: conns,
        duration_ms: bench_millis(),
        mode: LoadMode::Open { rate, arrival: Arrival::Poisson },
        mix: OpMix::update(UPDATE_PCT),
        dist: KeyDist::Uniform,
        key_range: INITIAL_SIZE * 2,
        value_size: ValueSize::Fixed(VALUE_BYTES),
        ..LoadGenConfig::default()
    };
    let result = loadgen::run(server.addr(), &cfg).expect("open-loop run");
    let stats = server.join();
    assert_eq!(stats.curr_connections, 0, "shutdown drains the gauge");
    assert!(stats.accepted > conns as u64, "every connection (and prefill) accepted");
    result
}

fn json_row(conns: usize, rate: f64, r: &loadgen::LoadGenResult) -> String {
    format!(
        concat!(
            "{{\"connections\":{},\"offered_rate\":{:.1},\"scheduled_ops\":{},",
            "\"answered_ops\":{},\"unanswered\":{},\"errors\":{},\"throughput\":{:.1},",
            "\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"p9999_ns\":{},\"max_ns\":{},",
            "\"p999_resolved\":{},\"p9999_resolved\":{}}}"
        ),
        conns,
        rate,
        r.scheduled_ops,
        r.total_ops,
        r.unanswered,
        r.errors,
        r.throughput,
        r.latency.p50,
        r.latency.p99,
        r.latency.p999,
        r.latency.p9999,
        r.latency.max,
        r.latency.resolves(0.999),
        r.latency.resolves(0.9999),
    )
}

fn main() {
    let rate = env_or("ASCYLIB_RATE", 4_000) as f64;
    let points = sweep();
    let mut table = Table::new(
        &format!(
            "Figure 14 — connection sweep at a fixed open-loop rate ({rate:.0} ops/s \
             poisson, {UPDATE_PCT}% upd, {VALUE_BYTES} B values, N={INITIAL_SIZE}, \
             CO-free latency from intended send times)"
        ),
        &["conns", "sched", "answered", "unans", "ops/s", "p50 us", "p99 us", "p999 us", "max us"],
    );

    let mut json_rows = Vec::new();
    for &conns in &points {
        let r = run_config(conns, rate);
        assert_eq!(r.errors, 0, "well-formed traffic must not error");
        assert!(r.total_ops > 0, "the open-loop burst must serve traffic");
        assert_eq!(
            r.total_ops + r.unanswered,
            r.scheduled_ops,
            "every scheduled op accounted for"
        );
        table.row(vec![
            conns.to_string(),
            r.scheduled_ops.to_string(),
            r.total_ops.to_string(),
            r.unanswered.to_string(),
            format!("{:.0}", r.throughput),
            f2(r.latency.p50 as f64 / 1e3),
            f2(r.latency.p99 as f64 / 1e3),
            f2(r.latency.p999 as f64 / 1e3),
            f2(r.latency.max as f64 / 1e3),
        ]);
        json_rows.push(json_row(conns, rate, &r));
    }

    table.print();
    let _ = table.write_csv("fig14_connections");
    let path = write_json(
        "fig14_connections",
        &format!("{{\"rows\":[{}]}}", json_rows.join(",")),
    )
    .expect("write BENCH_fig14_connections.json");
    println!("\nwrote {}", path.display());

    println!(
        "\nthe offered rate is fixed while connections grow 1000x: a readiness loop over\n\
         a small worker pool holds the throughput line, and open-loop (intended-send-time)\n\
         measurement keeps the latency tails honest while it does so"
    );
}
