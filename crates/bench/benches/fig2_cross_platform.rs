//! Figure 2: cross-platform evaluation of all CSDS algorithms.
//!
//! Paper workloads: average contention (4096 elements, 10% updates, thread
//! sweep), high contention (512 elements, 25% updates) and low contention
//! (16384 elements, 10% updates) at a fixed thread count. For each
//! structure family the histograms report throughput and the scalability
//! ratio versus the single-threaded run.
//!
//! The measured numbers come from the host machine; the projected columns
//! use the coherence model of `ascylib_harness::model` to estimate the
//! shape on the paper's six platforms (DESIGN.md §4).

use ascylib::api::StructureKind;
use ascylib_bench::{algorithms, display_name, run_entry, workload};
use ascylib_harness::report::{f2, Table};
use ascylib_harness::{max_threads, PlatformProfile};

fn main() {
    let families = [
        (StructureKind::LinkedList, 1024usize),
        (StructureKind::HashTable, 4096),
        (StructureKind::SkipList, 4096),
        (StructureKind::Bst, 4096),
    ];
    let contention = [
        ("average", 4096usize, 10u32),
        ("high", 512, 25),
        ("low", 16384, 10),
    ];
    let threads = max_threads();
    let platforms = PlatformProfile::all();

    for (kind, avg_size) in families {
        for (label, size, updates) in contention {
            // Linked lists use a smaller "average"/"low" size to keep
            // runtimes reasonable (their operations are O(n)).
            let size = if kind == StructureKind::LinkedList {
                size.min(avg_size.max(512))
            } else {
                size
            };
            let mut table = Table::new(
                &format!("Figure 2 [{kind}] — {label} contention ({size} elems, {updates}% upd)"),
                &[
                    "algorithm", "1T Mops/s", "nT Mops/s", "threads", "scalability",
                    "Opteron*", "Xeon20*", "Xeon40*", "Tilera*", "T4-4*",
                ],
            );
            for entry in algorithms(kind) {
                let single = run_entry(&entry, workload(size, updates, 1));
                let multi = run_entry(&entry, workload(size, updates, threads));
                let scalability = multi.throughput / single.throughput.max(1.0);
                let mut row = vec![
                    display_name(&entry).to_string(),
                    f2(single.mops),
                    f2(multi.mops),
                    threads.to_string(),
                    f2(scalability),
                ];
                for p in platforms.iter().take(5) {
                    row.push(f2(p.project_mops(&multi, p.hardware_threads.min(20))));
                }
                table.row(row);
            }
            table.print();
            let _ = table.write_csv(&format!(
                "fig2_{}_{}",
                kind.to_string().replace(' ', "_"),
                label
            ));
        }
    }
}
