//! Figure 3: cache misses per operation vs. scalability for linked lists.
//!
//! Paper workload: 4096-element list, 10% updates, 20 threads. The paper
//! uses hardware cache-miss counters; we report the cache-line-transfer
//! estimate derived from the instrumented shared stores / CAS / lock
//! acquisitions (DESIGN.md §4), which reproduces the ranking: async lowest,
//! lazy/pugh low, harris/michael middle, copy and coupling highest — and the
//! inverse correlation with scalability.

use ascylib::api::StructureKind;
use ascylib_bench::{algorithms, display_name, run_entry, workload};
use ascylib_harness::max_threads;
use ascylib_harness::report::{f2, Table};

fn main() {
    let threads = max_threads();
    // A smaller list than the paper's 4096 keeps the O(n) traversals fast;
    // the ranking is unaffected.
    let size = 1024;
    let mut table = Table::new(
        "Figure 3 — linked lists: cache-line transfers/op vs scalability",
        &["algorithm", "transfers/op", "atomics/op", "restarts/op", "scalability"],
    );
    for entry in algorithms(StructureKind::LinkedList) {
        let single = run_entry(&entry, workload(size, 10, 1));
        let multi = run_entry(&entry, workload(size, 10, threads));
        let scalability = multi.throughput / single.throughput.max(1.0);
        let per_op = |v: u64| v as f64 / multi.total_ops.max(1) as f64;
        table.row(vec![
            display_name(&entry).to_string(),
            f2(multi.transfers_per_op()),
            f2(per_op(multi.counters.atomic_ops)),
            f2(per_op(multi.counters.restarts)),
            f2(scalability),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig3_cache_misses");
}
