//! Figure 12 (extension): what the network boundary costs — and what
//! pipelining buys back.
//!
//! The paper's figures (and `fig10_sharding`) measure structures
//! *in-process*: the caller and the structure share an address space, and an
//! operation costs a traversal. A serving deployment pays two more taxes —
//! the wire codec and the round trip — so this bench replays the paper's
//! 10%-update workload three ways on the same sharded CLHT (1, 2, and 4
//! shards):
//!
//! 1. **in-process** — the harness drives the `ShardedMap` directly
//!    (upper bound: zero serving overhead);
//! 2. **loopback, depth 1** — closed-loop clients over TCP, one request in
//!    flight per connection (lower bound: every operation pays a full
//!    round trip);
//! 3. **loopback, depth 16** — the same clients pipelining 16 frames per
//!    round trip, the serving tier's answer to the RTT tax.
//!
//! The headline number is the **pipelining speedup** (depth 16 vs depth 1):
//! it should approach an order of magnitude on loopback, because the
//! round trip — not the structure — dominates the unpipelined config. The
//! in-process panel is also emitted as `BENCH_fig12_server.json`
//! (machine-readable trajectory, `report::to_json`).

use std::sync::Arc;

use ascylib::hashtable::ClhtLb;
use ascylib_harness::report::{f2, to_json, write_json, Table};
use ascylib_harness::{bench_millis, run_benchmark, KeyDist, OpMix, WorkloadBuilder};
use ascylib_server::loadgen::{self, LoadGenConfig};
use ascylib_server::{BlobStore, Server, ServerConfig, ValueSize};
use ascylib_shard::{BlobMap, ShardedMap};

const INITIAL_SIZE: usize = 8192;
const UPDATE_PCT: u32 = 10;

/// Loopback values are 8 bytes — the size of the `u64` the in-process
/// panel moves — so the three panels differ only in the serving path, not
/// in payload volume.
const VALUE_SIZE: ValueSize = ValueSize::Fixed(8);

fn connections() -> usize {
    (ascylib_harness::max_threads()).clamp(1, 4)
}

/// In-process baseline: the harness drives a sharded CLHT of raw `u64`
/// values directly (upper bound: zero serving overhead, no blob layer).
fn run_in_process(shards: usize, threads: usize) -> ascylib_harness::BenchmarkResult {
    let map = Arc::new(ShardedMap::new(shards, move |_| {
        ClhtLb::with_capacity((INITIAL_SIZE * 2 / shards).max(64))
    }));
    let w = WorkloadBuilder::new()
        .initial_size(INITIAL_SIZE)
        .update_percent(UPDATE_PCT)
        .threads(threads)
        .duration_ms(bench_millis())
        .build();
    run_benchmark(map, w)
}

/// Over-loopback: start a server over a blob-valued sharded CLHT on an
/// ephemeral port, prefill over the wire, drive it with the closed-loop
/// load generator.
fn run_loopback(shards: usize, conns: usize, depth: usize) -> loadgen::LoadGenResult {
    let map = Arc::new(BlobMap::new(shards, move |_| {
        ClhtLb::with_capacity((INITIAL_SIZE * 2 / shards).max(64))
    }));
    let server = Server::start(
        "127.0.0.1:0",
        BlobStore::new(map),
        ServerConfig::for_connections(conns),
    )
    .expect("bind ephemeral port");
    loadgen::prefill(
        server.addr(),
        INITIAL_SIZE as u64,
        INITIAL_SIZE as u64 * 2,
        VALUE_SIZE,
        0xF1612,
    )
    .expect("prefill over the wire");
    let cfg = LoadGenConfig {
        connections: conns,
        duration_ms: bench_millis(),
        mix: OpMix::update(UPDATE_PCT),
        dist: KeyDist::Uniform,
        key_range: INITIAL_SIZE as u64 * 2,
        value_size: VALUE_SIZE,
        pipeline_depth: depth,
        ..LoadGenConfig::default()
    };
    let result = loadgen::run(server.addr(), &cfg).expect("loadgen run");
    server.join();
    result
}

fn main() {
    let conns = connections();
    let mut table = Table::new(
        &format!(
            "Figure 12 — serving tier over loopback vs in-process, {conns} conns/threads, \
             {UPDATE_PCT}% upd, N={INITIAL_SIZE}"
        ),
        &[
            "shards",
            "in-process Mops/s",
            "loopback d=1 Mops/s",
            "loopback d=16 Mops/s",
            "pipelining speedup",
            "net tax (d=16)",
            "d=1 p50 RTT us",
            "d=16 p50 RTT us",
        ],
    );

    let mut json_rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let inproc = run_in_process(shards, conns);
        let unpipelined = run_loopback(shards, conns, 1);
        let pipelined = run_loopback(shards, conns, 16);
        assert_eq!(unpipelined.errors, 0, "well-formed traffic must not error");
        assert_eq!(pipelined.errors, 0, "well-formed traffic must not error");
        table.row(vec![
            shards.to_string(),
            f2(inproc.mops),
            f2(unpipelined.mops),
            f2(pipelined.mops),
            f2(pipelined.mops / unpipelined.mops.max(f64::MIN_POSITIVE)),
            f2(inproc.mops / pipelined.mops.max(f64::MIN_POSITIVE)),
            f2(unpipelined.batch_rtt.p50 as f64 / 1e3),
            f2(pipelined.batch_rtt.p50 as f64 / 1e3),
        ]);
        json_rows.push(format!("\"shards_{shards}\":{}", to_json(&inproc)));
    }

    table.print();
    let _ = table.write_csv("fig12_server");
    // Machine-readable trajectory of the in-process panel (the loopback
    // panels live in the CSV; BenchmarkResult is the stable JSON schema).
    let _ = write_json("fig12_server", &format!("{{{}}}", json_rows.join(",")));

    println!(
        "\npipelining turns {} round trips into one; on loopback the RTT dominates,\n\
         so depth-16 throughput should sit close to the in-process line while\n\
         depth-1 throughput is RTT-bound regardless of shard count",
        16
    );
}
