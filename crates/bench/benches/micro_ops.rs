//! Criterion micro-benchmarks: single-threaded cost of search / insert /
//! remove on a representative subset of the algorithms.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use ascylib::api::ConcurrentMap;
use ascylib::bst::{BstTk, NatarajanBst};
use ascylib::hashtable::{ClhtLb, ClhtLf, JavaHashTable, LazyHashTable};
use ascylib::list::{HarrisOptList, LazyList};
use ascylib::skiplist::{FraserOptSkipList, HerlihySkipList};

fn bench_map(c: &mut Criterion, name: &str, map: &dyn ConcurrentMap, elements: u64) {
    for k in 1..=elements {
        map.insert(k * 2, k);
    }
    let mut group = c.benchmark_group(name);
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    let mut key = 0u64;
    group.bench_function("search_hit", |b| {
        b.iter(|| {
            key = key % elements + 1;
            std::hint::black_box(map.search(key * 2))
        })
    });
    group.bench_function("search_miss", |b| {
        b.iter(|| {
            key = key % elements + 1;
            std::hint::black_box(map.search(key * 2 - 1))
        })
    });
    group.bench_function("insert_remove", |b| {
        b.iter(|| {
            key = key % elements + 1;
            std::hint::black_box(map.insert(key * 2 - 1, key));
            std::hint::black_box(map.remove(key * 2 - 1))
        })
    });
    group.finish();
}

fn micro(c: &mut Criterion) {
    bench_map(c, "list/lazy", &LazyList::new(), 128);
    bench_map(c, "list/harris-opt", &HarrisOptList::new(), 128);
    bench_map(c, "hash/lazy", &LazyHashTable::with_buckets(2048), 1024);
    bench_map(c, "hash/java", &JavaHashTable::with_capacity(2048), 1024);
    bench_map(c, "hash/clht-lb", &ClhtLb::with_capacity(2048), 1024);
    bench_map(c, "hash/clht-lf", &ClhtLf::with_capacity(2048), 1024);
    bench_map(c, "skiplist/herlihy", &HerlihySkipList::new(), 1024);
    bench_map(c, "skiplist/fraser-opt", &FraserOptSkipList::new(), 1024);
    bench_map(c, "bst/natarajan", &NatarajanBst::new(), 1024);
    bench_map(c, "bst/bst-tk", &BstTk::new(), 1024);
}

criterion_group!(benches, micro);
criterion_main!(benches);
