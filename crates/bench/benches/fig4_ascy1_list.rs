//! Figure 4: ASCY1 on linked lists (1024 elements, 5% updates).
//!
//! Reports, per algorithm and thread count: total throughput, power relative
//! to async, mean search latency, and the 1/25/50/75/99 search-latency
//! percentiles — the four panels of Figure 4. The ASCY1 effect shows up as
//! `harris-opt` achieving lower and tighter search latencies than `harris`
//! and `michael`.

use ascylib::api::StructureKind;
use ascylib_bench::{algorithms, display_name, run_entry, workload};
use ascylib_harness::report::{f2, Table};
use ascylib_harness::{max_threads, thread_sweep, EnergyModel};

fn main() {
    let model = EnergyModel::default();
    let threads = max_threads();

    // Panel (a): throughput vs threads.
    let mut tput = Table::new(
        "Figure 4a — linked list (1024 elems, 5% upd): throughput (Mops/s) vs threads",
        &["algorithm", "threads", "Mops/s"],
    );
    for entry in algorithms(StructureKind::LinkedList) {
        for &t in &thread_sweep() {
            let r = run_entry(&entry, workload(1024, 5, t));
            tput.row(vec![display_name(&entry).to_string(), t.to_string(), f2(r.mops)]);
        }
    }
    tput.print();
    let _ = tput.write_csv("fig4a_throughput");

    // Panels (b)-(d): relative power, search latency, latency distribution at
    // the maximum thread count.
    let entries = algorithms(StructureKind::LinkedList);
    let async_entry = entries.iter().find(|e| e.asynchronized).expect("async baseline");
    let baseline = run_entry(async_entry, workload(1024, 5, threads));
    let mut panel = Table::new(
        "Figure 4b-d — relative power and search latency (ns)",
        &["algorithm", "power/async", "mean", "p1", "p25", "p50", "p75", "p99"],
    );
    for entry in &entries {
        let r = run_entry(entry, workload(1024, 5, threads));
        let lat = r.search_latency;
        panel.row(vec![
            display_name(entry).to_string(),
            f2(model.relative_power(&r, &baseline)),
            f2(lat.mean),
            lat.p1.to_string(),
            lat.p25.to_string(),
            lat.p50.to_string(),
            lat.p75.to_string(),
            lat.p99.to_string(),
        ]);
    }
    panel.print();
    let _ = panel.write_csv("fig4bcd_latency_power");
}
