//! Figure 9: BST-TK vs natarajan, 4096 elements, varying update rates.
//!
//! The paper runs 20 threads and update rates 0/1/10/20/100%; BST-TK and
//! natarajan should land within a few percent of each other, with BST-TK
//! using fewer atomic operations but paying a slightly higher parse
//! overhead.

use std::sync::Arc;

use ascylib::api::ConcurrentMap;
use ascylib::bst::{BstTk, NatarajanBst};
use ascylib_bench::{run_map, workload};
use ascylib_harness::report::{f2, Table};
use ascylib_harness::{max_threads, PlatformProfile};

fn main() {
    let threads = max_threads();
    let rates = [0u32, 1, 10, 20, 100];
    let platforms = PlatformProfile::all();
    let mut table = Table::new(
        "Figure 9 — BST-TK vs natarajan (4096 elems) across update rates",
        &[
            "algorithm", "upd %", "Mops/s", "atomics/succ-upd", "restarts/op",
            "Opteron*", "Xeon20*", "Xeon40*", "Tilera*", "T4-4*",
        ],
    );
    for rate in rates {
        let algos: Vec<(&str, Arc<dyn ConcurrentMap>)> = vec![
            ("natarajan", Arc::new(NatarajanBst::new()) as Arc<dyn ConcurrentMap>),
            ("bst-tk", Arc::new(BstTk::new())),
        ];
        for (name, map) in algos {
            let r = run_map(map, workload(4096, rate, threads));
            let mut row = vec![
                name.to_string(),
                rate.to_string(),
                f2(r.mops),
                f2(r.atomics_per_successful_update()),
                f2(r.counters.restarts as f64 / r.total_ops.max(1) as f64),
            ];
            for p in platforms.iter().take(5) {
                row.push(f2(p.project_mops(&r, p.hardware_threads.min(20))));
            }
            table.row(row);
        }
    }
    table.print();
    let _ = table.write_csv("fig9_bst_tk");
}
