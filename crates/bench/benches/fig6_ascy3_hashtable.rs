//! Figure 6: ASCY3 on hash tables (8192 elements, 8192 buckets, 10% updates).
//!
//! Compares the ASCY3-enabled tables against their `-no` variants (which
//! still acquire locks when an update cannot succeed): throughput, power
//! relative to async, and the latency of unsuccessful updates (where ASCY3
//! yields a 1.5–4× improvement in the paper).

use std::sync::Arc;

use ascylib::api::ConcurrentMap;
use ascylib::hashtable::{
    AsyncHashTable, CopyHashTable, JavaHashTable, LazyHashTable, PughHashTable,
};
use ascylib_bench::{run_map, workload};
use ascylib_harness::report::{f2, Table};
use ascylib_harness::{max_threads, EnergyModel};

fn variants() -> Vec<(&'static str, Arc<dyn ConcurrentMap>)> {
    let buckets = 8192;
    vec![
        ("async", Arc::new(AsyncHashTable::with_buckets(buckets)) as Arc<dyn ConcurrentMap>),
        ("lazy", Arc::new(LazyHashTable::with_buckets(buckets))),
        ("lazy-no", Arc::new(LazyHashTable::with_buckets_no_ascy3(buckets))),
        ("pugh", Arc::new(PughHashTable::with_buckets(buckets))),
        ("pugh-no", Arc::new(PughHashTable::with_buckets_no_ascy3(buckets))),
        ("copy", Arc::new(CopyHashTable::with_buckets(buckets))),
        ("copy-no", Arc::new(CopyHashTable::with_buckets_no_ascy3(buckets))),
        ("java", Arc::new(JavaHashTable::with_capacity(buckets))),
        ("java-no", Arc::new(JavaHashTable::with_capacity_no_ascy3(buckets))),
    ]
}

fn main() {
    let threads = max_threads();
    let model = EnergyModel::default();
    let w = workload(8192, 10, threads);

    let baseline = run_map(Arc::new(AsyncHashTable::with_buckets(8192)), w);
    let mut table = Table::new(
        "Figure 6 — hash table (8192 elems, 10% upd): ASCY3 vs -no variants",
        &[
            "algorithm", "Mops/s", "power/async", "unsucc-upd mean ns", "unsucc p99",
            "succ-upd mean ns",
        ],
    );
    for (name, map) in variants() {
        let r = run_map(map, w);
        table.row(vec![
            name.to_string(),
            f2(r.mops),
            f2(model.relative_power(&r, &baseline)),
            f2(r.unsuccessful_update_latency.mean),
            r.unsuccessful_update_latency.p99.to_string(),
            f2(r.successful_update_latency.mean),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig6_ascy3_hashtable");
}
