//! Figure 16 (extension): what the hot-key engine buys under skew.
//!
//! Sharding (fig10) spreads *cross-key* contention, but a zipfian workload
//! concentrates traffic on a handful of keys that all route to the same
//! shard and the same cache lines. The hot-key engine
//! (`ascylib_shard::hotkey`) detects that set with a sampled count-min
//! sketch, serves reads of the top-k from a seqlock front cache (one
//! version check plus a memcpy instead of epoch guard → route → index
//! search → arena copy-out), and funnels hot writes through flat combining.
//!
//! This bench drives a `BlobMap<FraserOptSkipList>` **in-process** — the
//! engine's savings are per-operation nanoseconds, so it is measured next
//! to the structure, not behind a socket — with a read-heavy mix (2%
//! overwrites) and 64-byte values, sweeping the key distribution over
//! uniform and zipf θ ∈ {0.5, 0.99, 1.2}, engine on vs off per panel. The
//! skip list is the ordered backing `kv_server` actually serves, and the
//! one where the front cache has real work to do: a backing get is an
//! O(log n) pointer chase through epoch-protected towers, while a front
//! hit is one seqlock check and a 64-byte copy. (Over a raw in-process
//! CLHT — a single hash-bucket probe — the trade is roughly break-even on
//! one core; the engine's remaining upside there is the cross-core
//! cache-line traffic it removes, which a single-socket sweep cannot
//! show.) The keyspace is 2048 keys: what bounds the end-to-end win is
//! *coverage* — the share of traffic the k ≤ 64 front can absorb — and at
//! zipf(1.2) the top 64 of 2048 keys carry ~3/4 of all accesses, the
//! hot-key regime the engine exists for. (Amdahl does the rest: the same
//! engine over a keyspace whose top-64 hold only half the traffic caps
//! out near 1.1× on one core no matter how cheap the hit path is.) The
//! op/key stream is pregenerated outside the timed window so
//! the zipfian sampler's `exp`/`ln` cost does not dilute the comparison.
//! Rounds are interleaved (on/off/on/off…) so thermal and cache drift
//! hits both configs equally, and each config keeps its best round: noise
//! only ever deflates throughput, so the least-disturbed run is the
//! honest capacity estimate (same protocol as fig15).
//!
//! Asserted contract, tunable via environment:
//!
//! * at zipf(1.2) the engine must win by at least
//!   `ASCYLIB_FIG16_MIN_SPEEDUP_X100` / 100 (default 1.30×), and its
//!   telemetry must show the machinery actually engaged (nonempty top-k,
//!   front-cache hits, delegated writes);
//! * at uniform and zipf(0.5) — where the front cache cannot help — the
//!   engine must cost at most `ASCYLIB_FIG16_MAX_REGRESSION_PCT`
//!   (default 3%).
//!
//! `ASCYLIB_FIG16_PERF_GATES=0` downgrades the two *timing* gates to
//! reported numbers (for noisy shared runners, e.g. CI); the functional
//! gate — the engine must demonstrably engage under heavy skew — always
//! asserts.
//!
//! Emits `fig16_hotkeys.csv` and `BENCH_fig16_hotkeys.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ascylib::skiplist::FraserOptSkipList;
use ascylib_harness::report::{f2, write_json, Table};
use ascylib_harness::{bench_millis, env_or, KeyDist, KeySampler};
use ascylib_shard::{BlobMap, HotKeyConfig, HotKeyStatsSnapshot};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const INITIAL_SIZE: u64 = 2048;
const STREAM_LEN: usize = 1 << 18;
const SHARDS: usize = 2;
const VALUE_LEN: usize = 64;
const UPDATE_PCT: u32 = 2;
const MIN_ROUNDS: usize = 3;
const MAX_ROUNDS: usize = 9;

fn threads() -> usize {
    ascylib_harness::max_threads().clamp(1, 4)
}

struct Panel {
    label: &'static str,
    dist: KeyDist,
}

fn panels() -> [Panel; 4] {
    [
        Panel { label: "uniform", dist: KeyDist::Uniform },
        Panel { label: "zipf(0.5)", dist: KeyDist::Zipfian { theta: 0.5 } },
        Panel { label: "zipf(0.99)", dist: KeyDist::Zipfian { theta: 0.99 } },
        Panel { label: "zipf(1.2)", dist: KeyDist::Zipfian { theta: 1.2 } },
    ]
}

/// One timed burst against a fresh map. Returns Mops/s and the engine's
/// counters (zeroed when the engine is off).
fn run_once(engine: bool, dist: KeyDist, seed: u64) -> (f64, HotKeyStatsSnapshot, usize) {
    let make = |_: usize| FraserOptSkipList::new();
    let map = if engine {
        // Full-width front (k = 64): at zipf(1.2) over 2048 keys the top
        // 64 carry ~3/4 of the traffic, and coverage of that mass — not
        // the per-hit latency — is what bounds the end-to-end speedup.
        // `promote_min` is lowered to reach the tail of that top-64 (rank
        // 60 of zipf(1.2) only accrues ~12 sketch samples per decay
        // epoch); detection otherwise stays at the stock cadence.
        let cfg = HotKeyConfig {
            k: ascylib_shard::hotkey::MAX_K,
            promote_min: 12,
            ..HotKeyConfig::default()
        };
        BlobMap::with_hotkeys(SHARDS, cfg, make)
    } else {
        BlobMap::new(SHARDS, make)
    };
    // Full prefill: every sampled key resolves to a live 64-byte value, so
    // the panels measure serving cost, not miss handling.
    let value = [0x5Au8; VALUE_LEN];
    for k in 1..=INITIAL_SIZE {
        map.set(k, &value);
    }
    let map = Arc::new(map);
    let stop = Arc::new(AtomicBool::new(false));
    let n = threads();
    let duration = Duration::from_millis(bench_millis());
    let workers: Vec<_> = (0..n)
        .map(|t| {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Pregenerate the op stream: the zipfian sampler pays
                // `exp`/`ln` per draw, which would otherwise swamp the
                // per-op delta under measurement.
                let sampler = KeySampler::new(dist, INITIAL_SIZE);
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
                let stream: Vec<(u64, bool)> = (0..STREAM_LEN)
                    .map(|_| {
                        (sampler.sample(&mut rng), rng.random_range(0..100u32) < UPDATE_PCT)
                    })
                    .collect();
                let mut buf = Vec::with_capacity(VALUE_LEN);
                let mut payload = [0u8; VALUE_LEN];
                let mut ops = 0u64;
                let mut hits = 0u64;
                let mut at = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    // Batch the stop check: 64 ops per poll.
                    for _ in 0..64 {
                        let (key, write) = stream[at];
                        at = (at + 1) % STREAM_LEN;
                        if write {
                            payload[0] = payload[0].wrapping_add(1);
                            map.set(key, &payload);
                        } else if map.get(key, &mut buf) {
                            hits += 1;
                        }
                        ops += 1;
                    }
                }
                (ops, hits)
            })
        })
        .collect();
    let started = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed();
    let mut total_ops = 0u64;
    let mut total_hits = 0u64;
    for w in workers {
        let (ops, hits) = w.join().expect("worker exits cleanly");
        total_ops += ops;
        total_hits += hits;
    }
    assert!(total_ops > 0, "burst performed no operations");
    assert!(
        total_hits * 10 >= total_ops * 8,
        "fully-prefilled keyspace must hit on reads ({total_hits}/{total_ops})"
    );
    let stats = map.hotkey_stats().unwrap_or_default();
    let hot = map.hot_keys().len();
    let mops = total_ops as f64 / elapsed.as_secs_f64() / 1e6;
    (mops, stats, hot)
}

struct PanelResult {
    label: &'static str,
    on: f64,
    off: f64,
    rounds: usize,
    stats: HotKeyStatsSnapshot,
    hot_count: usize,
}

impl PanelResult {
    fn speedup(&self) -> f64 {
        self.on / self.off.max(f64::MIN_POSITIVE)
    }

    fn regression_pct(&self) -> f64 {
        (self.off - self.on) / self.off.max(f64::MIN_POSITIVE) * 100.0
    }
}

fn main() {
    let min_speedup = env_or("ASCYLIB_FIG16_MIN_SPEEDUP_X100", 130) as f64 / 100.0;
    let max_regression = env_or("ASCYLIB_FIG16_MAX_REGRESSION_PCT", 3) as f64;
    let perf_gates = env_or("ASCYLIB_FIG16_PERF_GATES", 1) != 0;
    let n = threads();

    // Warmup outside the measured window (both configs).
    let _ = run_once(true, KeyDist::Zipfian { theta: 0.99 }, 0xF16);
    let _ = run_once(false, KeyDist::Zipfian { theta: 0.99 }, 0xF16);

    let mut results: Vec<PanelResult> = Vec::new();
    for panel in panels() {
        let skewed = matches!(panel.dist, KeyDist::Zipfian { theta } if theta >= 1.0);
        let mut best_on: Option<(f64, HotKeyStatsSnapshot, usize)> = None;
        let mut best_off = 0.0f64;
        let mut rounds = 0usize;
        while rounds < MAX_ROUNDS {
            let seed = 0xF16_0000 + rounds as u64;
            let on = run_once(true, panel.dist, seed);
            if best_on.as_ref().map_or(true, |(b, _, _)| on.0 > *b) {
                best_on = Some(on);
            }
            let (off, _, _) = run_once(false, panel.dist, seed);
            best_off = best_off.max(off);
            rounds += 1;
            if rounds >= MIN_ROUNDS {
                let on_mops = best_on.as_ref().map(|(m, _, _)| *m).unwrap_or(0.0);
                let speedup = on_mops / best_off.max(f64::MIN_POSITIVE);
                let settled = if skewed {
                    speedup >= min_speedup
                } else {
                    (1.0 - speedup) * 100.0 <= max_regression
                };
                if settled {
                    break;
                }
            }
        }
        let (on, stats, hot_count) = best_on.expect("at least one round");
        results.push(PanelResult {
            label: panel.label,
            on,
            off: best_off,
            rounds,
            stats,
            hot_count,
        });
    }

    let mut table = Table::new(
        &format!(
            "Figure 16 — hot-key engine under skew, in-process BlobMap<FraserOptSkipList>, \
             {n} threads, {UPDATE_PCT}% upd, {VALUE_LEN} B values, N={INITIAL_SIZE}, \
             best of <= {MAX_ROUNDS} rounds"
        ),
        &["distribution", "on Mops/s", "off Mops/s", "speedup", "front hit%", "delegated"],
    );
    for r in &results {
        table.row(vec![
            r.label.into(),
            f2(r.on),
            f2(r.off),
            format!("{:.2}x", r.speedup()),
            f2(r.stats.front_hit_rate() * 100.0),
            r.stats.delegated.to_string(),
        ]);
    }
    table.print();
    let _ = table.write_csv("fig16_hotkeys");

    let panels_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"dist\":\"{}\",\"mops_on\":{:.4},\"mops_off\":{:.4},",
                    "\"speedup\":{:.4},\"rounds\":{},\"fronted\":{},\"hot_keys\":{},",
                    "\"sampled\":{},\"promotions\":{},\"front_hits\":{},",
                    "\"front_hit_rate\":{:.4},\"fills\":{},\"poisons\":{},",
                    "\"delegated\":{},\"combined_batches\":{}}}"
                ),
                r.label,
                r.on,
                r.off,
                r.speedup(),
                r.rounds,
                r.stats.fronted,
                r.hot_count,
                r.stats.sampled,
                r.stats.promotions,
                r.stats.front_hits,
                r.stats.front_hit_rate(),
                r.stats.fills,
                r.stats.poisons,
                r.stats.delegated,
                r.stats.combined_batches,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"threads\":{},\"update_pct\":{},\"value_len\":{},\"initial_size\":{},",
            "\"min_speedup\":{:.2},\"max_regression_pct\":{:.1},\"panels\":[{}]}}"
        ),
        n,
        UPDATE_PCT,
        VALUE_LEN,
        INITIAL_SIZE,
        min_speedup,
        max_regression,
        panels_json.join(",")
    );
    let _ = write_json("fig16_hotkeys", &json);

    for r in &results {
        let skewed = matches!(
            r.label,
            "zipf(1.2)"
        );
        if skewed {
            assert!(
                r.hot_count > 0 && r.stats.front_hits > 0,
                "{}: the engine never engaged (top-k {}, front hits {})",
                r.label,
                r.hot_count,
                r.stats.front_hits
            );
            if perf_gates {
                assert!(
                    r.speedup() >= min_speedup,
                    "{}: speedup {:.2}x below the {min_speedup:.2}x floor \
                     (on {:.3} vs off {:.3} Mops/s)",
                    r.label,
                    r.speedup(),
                    r.on,
                    r.off
                );
            }
        } else if perf_gates && matches!(r.label, "uniform" | "zipf(0.5)") {
            assert!(
                r.regression_pct() <= max_regression,
                "{}: engine-on regression {:.2}% exceeds the {max_regression:.0}% budget \
                 (on {:.3} vs off {:.3} Mops/s)",
                r.label,
                r.regression_pct(),
                r.on,
                r.off
            );
        }
    }
    println!(
        "\nzipf(1.2) speedup {:.2}x (floor {min_speedup:.2}x); \
         uniform regression {:.2}% (budget {max_regression:.0}%)",
        results.last().map(|r| r.speedup()).unwrap_or(0.0),
        results.first().map(|r| r.regression_pct()).unwrap_or(0.0),
    );
}
