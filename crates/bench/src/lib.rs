//! Shared support code for the figure-reproduction benchmarks.
//!
//! Each `benches/fig*.rs` binary reproduces one table or figure of the ASCY
//! paper (see DESIGN.md §3 for the experiment index). They all follow the
//! same pattern: pick the algorithms and workload parameters the paper used,
//! run them through [`ascylib_harness::run_benchmark`], and print the same
//! rows/series the paper reports (plus a CSV copy under `target/ascylib/`).

use std::sync::Arc;

use ascylib::api::{ConcurrentMap, StructureKind};
use ascylib::ordered::OrderedMap;
use ascylib::registry::{self, AlgorithmEntry};
use ascylib_harness::{
    bench_millis, run_benchmark, run_benchmark_ordered, BenchmarkResult, OpMix, Workload,
    WorkloadBuilder,
};

/// Builds the paper's workload for a given structure size / update rate /
/// thread count, using the harness-wide duration setting.
pub fn workload(initial_size: usize, update_percent: u32, threads: usize) -> Workload {
    WorkloadBuilder::new()
        .initial_size(initial_size)
        .update_percent(update_percent)
        .threads(threads)
        .duration_ms(bench_millis())
        .build()
}

/// Runs one algorithm (by registry entry) under a workload.
pub fn run_entry(entry: &AlgorithmEntry, w: Workload) -> BenchmarkResult {
    let map = (entry.construct)(w.initial_size * 2);
    run_benchmark(map, w)
}

/// Runs an explicitly constructed map under a workload.
pub fn run_map(map: Arc<dyn ConcurrentMap>, w: Workload) -> BenchmarkResult {
    run_benchmark(map, w)
}

/// Builds a scan-mix workload (used by `fig11_scans`): an [`OpMix`] preset
/// over a given structure size / key distribution / thread count, with the
/// harness-wide duration.
pub fn scan_workload(
    initial_size: usize,
    mix: OpMix,
    dist: ascylib_harness::KeyDist,
    threads: usize,
) -> Workload {
    WorkloadBuilder::new()
        .initial_size(initial_size)
        .op_mix(mix)
        .key_dist(dist)
        .threads(threads)
        .duration_ms(bench_millis())
        .build()
}

/// Runs an ordered map under a workload whose mix may contain scans.
pub fn run_ordered(map: Arc<dyn OrderedMap>, w: Workload) -> BenchmarkResult {
    run_benchmark_ordered(map, w)
}

/// All algorithms for one structure kind (async baselines included).
pub fn algorithms(kind: StructureKind) -> Vec<AlgorithmEntry> {
    registry::by_structure(kind)
}

/// Short display name (strips the structure prefix used in the registry).
pub fn display_name(entry: &AlgorithmEntry) -> &'static str {
    entry
        .name
        .split_once('-')
        .map(|(_, rest)| rest)
        .unwrap_or(entry.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_uses_env_duration() {
        let w = workload(1024, 20, 2);
        assert_eq!(w.initial_size, 1024);
        assert_eq!(w.update_percent(), 20);
        assert_eq!(w.threads, 2);
    }

    #[test]
    fn scan_workload_carries_the_mix() {
        let w = scan_workload(2048, OpMix::ycsb_e(), ascylib_harness::KeyDist::Uniform, 4);
        assert!(w.mix.has_scans());
        assert_eq!(w.threads, 4);
    }

    #[test]
    fn display_names_match_paper() {
        let e = registry::by_name("ht-clht-lb").unwrap();
        assert_eq!(display_name(&e), "clht-lb");
        let e = registry::by_name("ll-harris-opt").unwrap();
        assert_eq!(display_name(&e), "harris-opt");
    }
}
