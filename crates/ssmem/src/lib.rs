//! # ascylib-ssmem — SSMEM, an epoch-based allocator with garbage collection
//!
//! This crate reproduces **SSMEM**, the memory allocator with epoch-based
//! garbage collection that accompanies ASCYLIB in the ASPLOS'15 paper
//! *"Asynchronized Concurrency: The Secret to Scaling Concurrent Search Data
//! Structures"* (§3, "Memory management").
//!
//! The design follows the paper:
//!
//! * Memory freed by a data-structure operation ("retired") does **not**
//!   become available for reuse until a garbage-collection pass decides that
//!   no other thread can still hold a reference to it.
//! * The decision is based on **per-thread timestamps** that threads bump
//!   when they enter and leave data-structure operations (RCU/QSBR-style).
//!   A retired batch records a snapshot of all timestamps; it can be
//!   reclaimed once every other thread was either quiescent at the snapshot
//!   or has advanced its timestamp since.
//! * The amount of garbage accumulated before a collection is attempted is
//!   configurable ([`set_gc_threshold`]), mirroring the
//!   `SSMEM_GC_FREE_SET_SIZE` knob the paper tunes per platform (512 on most
//!   machines, 128 on the Tilera).
//! * The allocator is **non-blocking**: the hot paths touch only the calling
//!   thread's state; the only shared write per operation is the owner
//!   thread's own (cache-line-padded) timestamp.
//!
//! # Usage model
//!
//! Every thread that touches a concurrent structure implicitly owns a
//! thread-local [`SsmemAllocator`]. Data-structure operations wrap themselves
//! in a [`Guard`] (obtained from [`protect`]) and allocate/retire nodes with
//! [`alloc`] / [`retire`]:
//!
//! ```
//! use ascylib_ssmem as ssmem;
//!
//! // Inside a data-structure operation:
//! let _guard = ssmem::protect();
//! let node: *mut u64 = ssmem::alloc(42u64);
//! // ... publish the node, later unlink it ...
//! // SAFETY: the node has been unlinked from every shared pointer, so no new
//! // references to it can be created.
//! unsafe { ssmem::retire(node) };
//! ```
//!
//! # Safety
//!
//! [`retire`] is `unsafe`: the caller must guarantee the object has been
//! unlinked from all shared pointers before retiring it, and that readers
//! only traverse retired objects while holding a [`Guard`] that was created
//! before the retire. These are exactly the SSMEM rules from the paper.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod allocator;
mod registry;

pub use allocator::{SsmemAllocator, SsmemStats};
pub use registry::registered_threads;

use std::cell::RefCell;

thread_local! {
    static THREAD_ALLOCATOR: RefCell<SsmemAllocator> = RefCell::new(SsmemAllocator::new());
}

/// Default number of retired objects accumulated before a GC pass is
/// attempted (the paper's `SSMEM_GC_FREE_SET_SIZE`, 512 on most platforms).
pub const DEFAULT_GC_THRESHOLD: usize = 512;

/// An RAII guard marking the calling thread as *inside* a data-structure
/// operation.
///
/// Creating the (outermost) guard bumps the thread's timestamp to an odd
/// value; dropping it bumps the timestamp back to even ("quiescent"). The
/// garbage collector uses these timestamps to decide when retired memory can
/// be reused. Guards may be nested; only the outermost transition touches the
/// shared timestamp.
#[derive(Debug)]
pub struct Guard {
    _private: (),
}

impl Guard {
    fn enter() -> Self {
        THREAD_ALLOCATOR.with(|a| a.borrow_mut().guard_enter());
        Guard { _private: () }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // Thread-local may already be gone during thread teardown; ignore.
        let _ = THREAD_ALLOCATOR.try_with(|a| a.borrow_mut().guard_exit());
    }
}

/// Enters a read-side / operation-side critical section.
///
/// Every search, insert, and remove of the ASCYLIB structures calls this once
/// at the top; the returned [`Guard`] keeps retired-but-not-yet-reclaimed
/// nodes alive until the operation finishes.
#[inline]
pub fn protect() -> Guard {
    Guard::enter()
}

/// Allocates an object through the calling thread's SSMEM allocator.
///
/// The allocation is served from the thread's reuse pool when a previously
/// retired object of the same layout has passed its grace period, otherwise
/// from the global allocator.
///
/// # Panics
///
/// Panics if `T` needs `Drop` (SSMEM never runs destructors; ASCYLIB nodes
/// are plain data).
#[inline]
pub fn alloc<T>(value: T) -> *mut T {
    THREAD_ALLOCATOR.with(|a| a.borrow_mut().alloc(value))
}

/// Retires an object previously returned by [`alloc`]: the memory will be
/// reused or released once no thread can still hold a reference to it.
///
/// # Safety
///
/// * `ptr` must have been returned by [`alloc`] (any thread) and not retired
///   or immediately deallocated before.
/// * The object must already be unreachable from the data structure's shared
///   pointers, so that only threads holding a [`Guard`] created before this
///   call can still be traversing it.
#[inline]
pub unsafe fn retire<T>(ptr: *mut T) {
    THREAD_ALLOCATOR.with(|a| a.borrow_mut().retire(ptr))
}

/// Immediately deallocates an object previously returned by [`alloc`].
///
/// This bypasses the grace period entirely and is only meant for tearing down
/// a data structure that is no longer shared (e.g. in `Drop` implementations,
/// which take `&mut self` and therefore have exclusive access).
///
/// # Safety
///
/// * `ptr` must have been returned by [`alloc`] and not retired/deallocated.
/// * No other thread may be able to reach the object.
#[inline]
pub unsafe fn dealloc_immediate<T>(ptr: *mut T) {
    // SAFETY: forwarded to the caller's contract.
    unsafe { allocator::dealloc_now(ptr) }
}

/// Allocates `layout` bytes of raw memory through the thread allocator
/// (used by the copy-on-write list for its array storage).
#[inline]
pub fn alloc_raw(layout: std::alloc::Layout) -> *mut u8 {
    THREAD_ALLOCATOR.with(|a| a.borrow_mut().alloc_raw(layout))
}

/// Retires raw memory previously obtained from [`alloc_raw`].
///
/// # Safety
///
/// Same contract as [`retire`], and `layout` must be the layout passed to
/// [`alloc_raw`].
#[inline]
pub unsafe fn retire_raw(ptr: *mut u8, layout: std::alloc::Layout) {
    THREAD_ALLOCATOR.with(|a| a.borrow_mut().retire_raw(ptr, layout))
}

/// Immediately deallocates raw memory obtained from [`alloc_raw`].
///
/// # Safety
///
/// Same contract as [`dealloc_immediate`]; `layout` must match the
/// allocation.
#[inline]
pub unsafe fn dealloc_raw_immediate(ptr: *mut u8, layout: std::alloc::Layout) {
    // SAFETY: forwarded to the caller's contract.
    unsafe { allocator::dealloc_raw_now(ptr, layout) }
}

/// Sets the garbage threshold (number of retired objects per batch) for the
/// calling thread's allocator.
///
/// The paper sets this to 512 on most platforms and 128 on the Tilera to keep
/// TLB pressure low.
#[inline]
pub fn set_gc_threshold(threshold: usize) {
    THREAD_ALLOCATOR.with(|a| a.borrow_mut().set_gc_threshold(threshold));
}

/// Forces a garbage-collection attempt on the calling thread's allocator and
/// on the orphan sets left behind by exited threads. Returns the number of
/// objects reclaimed.
#[inline]
pub fn collect() -> usize {
    THREAD_ALLOCATOR.with(|a| a.borrow_mut().collect())
}

/// Returns a snapshot of the calling thread's allocator statistics.
#[inline]
pub fn thread_stats() -> SsmemStats {
    THREAD_ALLOCATOR.with(|a| a.borrow().stats())
}

/// Waits for a full grace period: every thread that was inside an operation
/// when `synchronize` was called has finished that operation.
///
/// This is the equivalent of `synchronize_rcu()` and is used by the
/// RCU-style hash table (`urcu` in the paper), whose removals wait for all
/// ongoing operations to complete before freeing memory.
///
/// # Panics
///
/// Panics (in debug builds) if called while the calling thread holds a
/// [`Guard`]: waiting for oneself would deadlock.
pub fn synchronize() {
    let me = THREAD_ALLOCATOR.with(|a| {
        let a = a.borrow();
        debug_assert_eq!(
            a.stats().guard_depth,
            0,
            "ssmem::synchronize must not be called inside a Guard"
        );
        a.entry_handle()
    });
    let snapshot = crate::registry::snapshot();
    for (entry, ts) in snapshot {
        if std::sync::Arc::ptr_eq(&entry, &me) {
            continue;
        }
        if ts % 2 == 0 {
            // Quiescent at snapshot time.
            continue;
        }
        // Inside an operation: wait until it finishes (timestamp changes).
        let mut spins = 0u64;
        while entry.ts.load(std::sync::atomic::Ordering::SeqCst) == ts {
            std::hint::spin_loop();
            spins += 1;
            if spins % 1024 == 0 {
                std::thread::yield_now();
            }
            if !entry.active.load(std::sync::atomic::Ordering::Acquire) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn alloc_and_immediate_dealloc() {
        let p = alloc(7u64);
        // SAFETY: freshly allocated, never shared.
        unsafe {
            assert_eq!(*p, 7);
            dealloc_immediate(p);
        }
    }

    #[test]
    fn retired_memory_is_reused_after_grace_period() {
        set_gc_threshold(8);
        let mut ptrs = Vec::new();
        for i in 0..64u64 {
            let p = alloc(i);
            ptrs.push(p as usize);
            // SAFETY: never shared with another thread.
            unsafe { retire(p) };
        }
        // Other tests in this binary may briefly hold guards on their own
        // threads, which delays reclamation; retry until the grace period
        // clears.
        let mut reclaimed_any = false;
        for _ in 0..2_000 {
            collect();
            if thread_stats().reclaimed > 0 {
                reclaimed_any = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = thread_stats();
        assert!(stats.frees >= 64);
        assert!(reclaimed_any, "retirement should eventually reclaim: {stats:?}");
        // Allocate again: at least one address should be recycled.
        let mut reused = false;
        for i in 0..64u64 {
            let p = alloc(i);
            if ptrs.contains(&(p as usize)) {
                reused = true;
            }
            // SAFETY: never shared.
            unsafe { retire(p) };
        }
        assert!(reused, "expected the allocator to serve recycled addresses");
    }

    #[test]
    fn guard_blocks_reclamation_of_other_threads() {
        // Thread B holds a guard while thread A retires; A must not reclaim
        // until B drops its guard (B's timestamp is odd and unchanged).
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let release = Arc::new(AtomicU64::new(0));

        let b_barrier = Arc::clone(&barrier);
        let b_release = Arc::clone(&release);
        let handle = std::thread::spawn(move || {
            let _g = protect();
            b_barrier.wait(); // A may start retiring now.
            while b_release.load(Ordering::Acquire) == 0 {
                std::hint::spin_loop();
            }
            // Guard dropped here.
        });

        barrier.wait();
        set_gc_threshold(4);
        let pending_before = thread_stats().pending;
        for i in 0..32u64 {
            let p = alloc(i);
            // SAFETY: not shared.
            unsafe { retire(p) };
        }
        collect();
        let pending_guarded = thread_stats().pending;
        assert!(
            pending_guarded >= pending_before + 32,
            "memory must not be reclaimed while another thread is inside an operation \
             (pending before: {pending_before}, after: {pending_guarded})"
        );
        release.store(1, Ordering::Release);
        handle.join().unwrap();
        // Now the other thread is quiescent: reclamation proceeds.
        let mut drained = false;
        for _ in 0..2_000 {
            collect();
            if thread_stats().pending < pending_before + 32 {
                drained = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(drained, "reclamation should resume after the guard is dropped");
    }

    #[test]
    fn raw_alloc_roundtrip() {
        let layout = std::alloc::Layout::array::<u64>(16).unwrap();
        let p = alloc_raw(layout);
        assert!(!p.is_null());
        // SAFETY: freshly allocated raw memory of 16 u64s.
        unsafe {
            std::ptr::write_bytes(p, 0xAB, layout.size());
            retire_raw(p, layout);
        }
        collect();
    }

    #[test]
    fn allocate_free_reuse_across_epochs() {
        // Smoke test of the full epoch lifecycle on one thread: allocate,
        // retire (free), cross an epoch boundary (guard enter/exit bumps the
        // timestamp), then observe the allocator serving recycled memory.
        set_gc_threshold(4);
        let first = alloc(0xEE_u64);
        // SAFETY: never shared.
        unsafe { retire(first) };
        // The reuse pool is LIFO, so a specific address can stay buried while
        // newer retirees are recycled first; reuse of *any* retired address
        // proves the epoch lifecycle.
        let mut retired = std::collections::HashSet::from([first as usize]);
        // Cross several epochs; each protect()/drop pair advances this
        // thread's timestamp past the retire snapshot.
        for _ in 0..4 {
            drop(protect());
        }
        let mut reused = false;
        for _ in 0..2_000 {
            collect();
            let p = alloc(0xAA_u64);
            let addr = p as usize;
            // SAFETY: never shared.
            unsafe { retire(p) };
            if !retired.insert(addr) {
                reused = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(reused, "allocator never recycled a retired address across epochs");
    }

    #[test]
    fn nested_guards_are_allowed() {
        let g1 = protect();
        let g2 = protect();
        drop(g2);
        drop(g1);
        let stats = thread_stats();
        // Timestamp transitions stay balanced (even when quiescent).
        assert_eq!(stats.guard_depth, 0);
    }
}
