//! Global registry of per-thread timestamps.
//!
//! Every thread that owns an SSMEM allocator publishes a cache-line-padded
//! timestamp here. Garbage-collection passes snapshot the registry to decide
//! whether retired memory is still potentially referenced.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crossbeam_utils::CachePadded;

/// A registered thread's shared state: its operation timestamp and liveness.
#[derive(Debug)]
pub(crate) struct ThreadEntry {
    /// Operation timestamp. Odd while the thread is inside an operation
    /// (holding a `Guard`), even while quiescent.
    pub(crate) ts: CachePadded<AtomicU64>,
    /// Cleared when the owning thread's allocator is dropped.
    pub(crate) active: AtomicBool,
}

impl ThreadEntry {
    fn new() -> Self {
        Self {
            ts: CachePadded::new(AtomicU64::new(0)),
            active: AtomicBool::new(true),
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadEntry>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadEntry>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers the calling thread and returns its entry.
///
/// Entries belonging to exited threads are pruned opportunistically.
pub(crate) fn register() -> Arc<ThreadEntry> {
    let entry = Arc::new(ThreadEntry::new());
    let mut reg = registry().lock().expect("ssmem registry poisoned");
    reg.retain(|e| e.active.load(Ordering::Acquire));
    reg.push(Arc::clone(&entry));
    entry
}

/// Snapshots every registered, still-active thread's timestamp.
///
/// A `SeqCst` fence is issued first so that any unlink stores performed by
/// the caller before retiring are ordered before the timestamp loads (see the
/// crate-level safety argument).
pub(crate) fn snapshot() -> Vec<(Arc<ThreadEntry>, u64)> {
    std::sync::atomic::fence(Ordering::SeqCst);
    let reg = registry().lock().expect("ssmem registry poisoned");
    reg.iter()
        .filter(|e| e.active.load(Ordering::Acquire))
        .map(|e| (Arc::clone(e), e.ts.load(Ordering::SeqCst)))
        .collect()
}

/// Number of threads currently registered with SSMEM (primarily for tests
/// and diagnostics).
pub fn registered_threads() -> usize {
    let reg = registry().lock().expect("ssmem registry poisoned");
    reg.iter().filter(|e| e.active.load(Ordering::Acquire)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_snapshot() {
        let entry = register();
        let snap = snapshot();
        assert!(snap.iter().any(|(e, _)| Arc::ptr_eq(e, &entry)));
        entry.ts.fetch_add(1, Ordering::SeqCst);
        let snap2 = snapshot();
        let (_, ts) = snap2
            .iter()
            .find(|(e, _)| Arc::ptr_eq(e, &entry))
            .expect("entry present");
        assert_eq!(*ts, 1);
        entry.active.store(false, Ordering::Release);
    }

    #[test]
    fn inactive_entries_are_pruned_and_excluded() {
        let entry = register();
        entry.active.store(false, Ordering::Release);
        let snap = snapshot();
        assert!(!snap.iter().any(|(e, _)| Arc::ptr_eq(e, &entry)));
        // Registering a new entry prunes the inactive one from the registry.
        let e2 = register();
        assert!(registered_threads() >= 1);
        e2.active.store(false, Ordering::Release);
    }
}
