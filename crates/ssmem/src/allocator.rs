//! The per-thread SSMEM allocator: retire batches, timestamp snapshots,
//! grace-period collection and a size-class reuse pool.

use std::alloc::Layout;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};

use crate::registry::{self, ThreadEntry};
use crate::DEFAULT_GC_THRESHOLD;

/// A single retired allocation awaiting its grace period.
#[derive(Debug)]
struct Retired {
    ptr: *mut u8,
    size: usize,
    align: usize,
}

// SAFETY: a `Retired` is just an owned pointer to memory that no thread is
// allowed to dereference anymore (the `retire` contract); moving the record
// between threads (for orphan hand-off) is sound.
unsafe impl Send for Retired {}

/// A batch of retired allocations together with the timestamp snapshot taken
/// when the batch was sealed.
#[derive(Debug)]
struct SealedSet {
    retired: Vec<Retired>,
    snapshot: Vec<(Arc<ThreadEntry>, u64)>,
}

fn orphan_sets() -> &'static Mutex<Vec<SealedSet>> {
    static ORPHANS: OnceLock<Mutex<Vec<SealedSet>>> = OnceLock::new();
    ORPHANS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Maximum number of reusable allocations kept per size class before excess
/// memory is returned to the system allocator.
const POOL_CAP_PER_CLASS: usize = 4096;

/// Counters describing the activity of one thread's SSMEM allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsmemStats {
    /// Objects handed out by [`crate::alloc`] / [`crate::alloc_raw`].
    pub allocations: u64,
    /// Objects retired (logically freed).
    pub frees: u64,
    /// Retired objects whose grace period has expired (now reusable or
    /// returned to the system).
    pub reclaimed: u64,
    /// Allocations served from the reuse pool instead of the system
    /// allocator.
    pub reused: u64,
    /// Garbage-collection passes attempted.
    pub gc_passes: u64,
    /// Retired objects still waiting for their grace period.
    pub pending: u64,
    /// Allocations sitting in the reuse pool right now (grace period
    /// passed, awaiting their next life). Bounded by the pool cap; a value
    /// that stops growing under steady churn is the "no leak across
    /// epochs" witness the blob-arena tests assert on.
    pub pooled: u64,
    /// Current guard nesting depth of the owning thread.
    pub guard_depth: u64,
}

impl SsmemStats {
    /// Adds another thread's stats into this one, field-wise and
    /// saturating, for whole-process aggregation (a server summing its
    /// workers' allocators). Every field sums meaningfully: the event
    /// counters are monotonic, and the point-in-time fields (`pending`,
    /// `pooled`, `guard_depth`) sum to the process-wide totals.
    pub fn merge(&mut self, other: &SsmemStats) {
        self.allocations = self.allocations.saturating_add(other.allocations);
        self.frees = self.frees.saturating_add(other.frees);
        self.reclaimed = self.reclaimed.saturating_add(other.reclaimed);
        self.reused = self.reused.saturating_add(other.reused);
        self.gc_passes = self.gc_passes.saturating_add(other.gc_passes);
        self.pending = self.pending.saturating_add(other.pending);
        self.pooled = self.pooled.saturating_add(other.pooled);
        self.guard_depth = self.guard_depth.saturating_add(other.guard_depth);
    }
}

/// A per-thread SSMEM allocator (see the crate-level documentation).
///
/// Normally accessed through the free functions of this crate, which manage a
/// thread-local instance; the type is public so that tests and the benchmark
/// harness can construct standalone allocators.
#[derive(Debug)]
pub struct SsmemAllocator {
    entry: Arc<ThreadEntry>,
    current: Vec<Retired>,
    sealed: VecDeque<SealedSet>,
    pool: HashMap<(usize, usize), Vec<*mut u8>>,
    threshold: usize,
    guard_depth: usize,
    stats: SsmemStats,
}

impl SsmemAllocator {
    /// Creates (and registers) a new allocator for the calling thread.
    pub fn new() -> Self {
        Self {
            entry: registry::register(),
            current: Vec::new(),
            sealed: VecDeque::new(),
            pool: HashMap::new(),
            threshold: DEFAULT_GC_THRESHOLD,
            guard_depth: 0,
            stats: SsmemStats::default(),
        }
    }

    /// Sets the number of retired objects per sealed batch.
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.threshold = threshold.max(1);
    }

    /// Handle to this allocator's registry entry (used by
    /// [`crate::synchronize`] to skip the calling thread).
    pub(crate) fn entry_handle(&self) -> Arc<ThreadEntry> {
        Arc::clone(&self.entry)
    }

    /// Returns a copy of the allocator's statistics.
    pub fn stats(&self) -> SsmemStats {
        let mut s = self.stats;
        s.pending = (self.current.len()
            + self.sealed.iter().map(|s| s.retired.len()).sum::<usize>()) as u64;
        s.pooled = self.pool.values().map(|list| list.len() as u64).sum();
        s.guard_depth = self.guard_depth as u64;
        s
    }

    pub(crate) fn guard_enter(&mut self) {
        self.guard_depth += 1;
        if self.guard_depth == 1 {
            // Becomes odd: "inside an operation". The RMW acts as a full
            // fence on the platforms we target, ordering it before the
            // operation's subsequent loads.
            self.entry.ts.fetch_add(1, Ordering::SeqCst);
        }
    }

    pub(crate) fn guard_exit(&mut self) {
        debug_assert!(self.guard_depth > 0, "unbalanced ssmem guard");
        self.guard_depth -= 1;
        if self.guard_depth == 0 {
            // Becomes even: "quiescent".
            self.entry.ts.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Allocates and initializes one `T`.
    ///
    /// # Panics
    ///
    /// Panics if `T` needs `Drop` — SSMEM never runs destructors.
    pub fn alloc<T>(&mut self, value: T) -> *mut T {
        assert!(
            !std::mem::needs_drop::<T>(),
            "ssmem only manages plain-data objects (no Drop)"
        );
        let ptr = self.alloc_raw(Layout::new::<T>()) as *mut T;
        // SAFETY: `alloc_raw` returned a fresh (or recycled, past its grace
        // period) allocation of the right layout; writing the initial value
        // is sound.
        unsafe { std::ptr::write(ptr, value) };
        ptr
    }

    /// Allocates `layout` bytes, reusing retired memory when possible.
    pub fn alloc_raw(&mut self, layout: Layout) -> *mut u8 {
        self.stats.allocations += 1;
        let key = (layout.size(), layout.align());
        if let Some(list) = self.pool.get_mut(&key) {
            if let Some(ptr) = list.pop() {
                self.stats.reused += 1;
                return ptr;
            }
        }
        // SAFETY: layout has non-zero size for all node types we allocate;
        // guard against zero-size just in case.
        let layout = if layout.size() == 0 {
            Layout::from_size_align(1, layout.align().max(1)).expect("valid layout")
        } else {
            layout
        };
        // SAFETY: layout is valid and non-zero-sized.
        let ptr = unsafe { std::alloc::alloc(layout) };
        assert!(!ptr.is_null(), "ssmem: out of memory");
        ptr
    }

    /// Retires a typed object (see [`crate::retire`] for the contract).
    pub fn retire<T>(&mut self, ptr: *mut T) {
        debug_assert!(!std::mem::needs_drop::<T>());
        self.retire_raw(ptr as *mut u8, Layout::new::<T>());
    }

    /// Retires raw memory of the given layout.
    pub fn retire_raw(&mut self, ptr: *mut u8, layout: Layout) {
        self.stats.frees += 1;
        self.current.push(Retired {
            ptr,
            size: layout.size(),
            align: layout.align(),
        });
        if self.current.len() >= self.threshold {
            self.seal_current();
            self.try_collect();
        }
    }

    fn seal_current(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let retired = std::mem::take(&mut self.current);
        let snapshot = registry::snapshot();
        self.sealed.push_back(SealedSet { retired, snapshot });
    }

    /// Attempts a collection pass; returns the number of objects reclaimed.
    pub fn collect(&mut self) -> usize {
        self.seal_current();
        self.try_collect()
    }

    fn try_collect(&mut self) -> usize {
        self.stats.gc_passes += 1;
        let mut reclaimed = 0;
        while let Some(front) = self.sealed.front() {
            if !Self::set_is_safe(front, Some(&self.entry)) {
                break;
            }
            let set = self.sealed.pop_front().expect("front exists");
            reclaimed += set.retired.len();
            for r in set.retired {
                self.recycle(r);
            }
        }
        reclaimed += self.collect_orphans();
        self.stats.reclaimed += reclaimed as u64;
        reclaimed
    }

    /// Collects orphan batches left behind by exited threads. Orphaned memory
    /// is returned directly to the system allocator.
    fn collect_orphans(&mut self) -> usize {
        let Ok(mut orphans) = orphan_sets().try_lock() else {
            return 0;
        };
        let mut reclaimed = 0;
        orphans.retain(|set| {
            if Self::set_is_safe(set, None) {
                reclaimed += set.retired.len();
                for r in &set.retired {
                    // SAFETY: grace period expired for every thread
                    // (including the collector itself, since `skip` is None);
                    // the pointer owns its allocation per the retire contract.
                    unsafe {
                        dealloc_retired(r);
                    }
                }
                false
            } else {
                true
            }
        });
        reclaimed
    }

    /// Is it safe to reclaim this batch? `skip` identifies the collecting
    /// thread itself when the batch was retired by that same thread (a thread
    /// never dereferences objects it has already retired).
    fn set_is_safe(set: &SealedSet, skip: Option<&Arc<ThreadEntry>>) -> bool {
        for (entry, ts_at_seal) in &set.snapshot {
            if let Some(me) = skip {
                if Arc::ptr_eq(entry, me) {
                    continue;
                }
            }
            if !entry.active.load(Ordering::Acquire) {
                continue;
            }
            if ts_at_seal % 2 == 0 {
                // Quiescent at seal time: it held no references then, and the
                // object was already unlinked, so later operations cannot
                // reach it.
                continue;
            }
            if entry.ts.load(Ordering::SeqCst) != *ts_at_seal {
                // The operation that was in flight at seal time has finished.
                continue;
            }
            return false;
        }
        true
    }

    fn recycle(&mut self, r: Retired) {
        let key = (r.size, r.align);
        let list = self.pool.entry(key).or_default();
        if list.len() < POOL_CAP_PER_CLASS {
            list.push(r.ptr);
        } else {
            // SAFETY: grace period expired; we own the allocation.
            unsafe { dealloc_retired(&r) };
        }
    }
}

impl Default for SsmemAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SsmemAllocator {
    fn drop(&mut self) {
        // Hand pending batches to the orphan list so surviving threads can
        // finish their grace periods; release the reuse pool immediately
        // (those allocations already passed their grace period).
        self.seal_current();
        if !self.sealed.is_empty() {
            if let Ok(mut orphans) = orphan_sets().lock() {
                orphans.extend(self.sealed.drain(..));
            }
        }
        for (&(size, align), list) in self.pool.iter() {
            for &ptr in list {
                let r = Retired { ptr, size, align };
                // SAFETY: pool entries are unreachable by any thread.
                unsafe { dealloc_retired(&r) };
            }
        }
        self.entry.active.store(false, Ordering::Release);
    }
}

/// Returns one retired allocation to the system allocator.
///
/// # Safety
///
/// The pointer must own a live allocation of exactly `size`/`align`.
unsafe fn dealloc_retired(r: &Retired) {
    let size = r.size.max(1);
    let layout = Layout::from_size_align(size, r.align.max(1)).expect("valid layout");
    // SAFETY: caller guarantees ownership and matching layout.
    unsafe { std::alloc::dealloc(r.ptr, layout) };
}

/// Immediately deallocates a typed object allocated through SSMEM.
///
/// # Safety
///
/// See [`crate::dealloc_immediate`].
pub(crate) unsafe fn dealloc_now<T>(ptr: *mut T) {
    let r = Retired {
        ptr: ptr as *mut u8,
        size: std::mem::size_of::<T>(),
        align: std::mem::align_of::<T>(),
    };
    // SAFETY: forwarded caller contract.
    unsafe { dealloc_retired(&r) };
}

/// Immediately deallocates raw memory allocated through SSMEM.
///
/// # Safety
///
/// See [`crate::dealloc_raw_immediate`].
pub(crate) unsafe fn dealloc_raw_now(ptr: *mut u8, layout: Layout) {
    let r = Retired {
        ptr,
        size: layout.size(),
        align: layout.align(),
    };
    // SAFETY: forwarded caller contract.
    unsafe { dealloc_retired(&r) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_allocator_roundtrip() {
        let mut a = SsmemAllocator::new();
        a.set_gc_threshold(4);
        let mut ptrs = Vec::new();
        for i in 0..16u64 {
            let p = a.alloc(i);
            // SAFETY: freshly allocated.
            unsafe { assert_eq!(*p, i) };
            ptrs.push(p);
        }
        for p in ptrs {
            a.retire(p);
        }
        a.collect();
        let s = a.stats();
        assert!(
            s.reclaimed > 0 || s.pending > 0,
            "retired objects must be either reclaimed or still pending: {s:?}"
        );
    }

    #[test]
    fn stats_track_allocations_and_frees() {
        let mut a = SsmemAllocator::new();
        let p = a.alloc(1u64);
        a.retire(p);
        let s = a.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.frees, 1);
    }

    #[test]
    fn pool_reuse_prefers_recycled_memory() {
        let mut a = SsmemAllocator::new();
        a.set_gc_threshold(1);
        let p = a.alloc(7u64);
        let addr = p as usize;
        a.retire(p);
        a.collect();
        if a.stats().reclaimed > 0 {
            let q = a.alloc(9u64);
            assert_eq!(q as usize, addr, "same-size allocation should reuse the slot");
            // SAFETY: q is exclusively owned.
            unsafe { dealloc_now(q) };
        }
    }

    #[test]
    fn pooled_stat_tracks_the_reuse_pool() {
        let mut a = SsmemAllocator::new();
        a.set_gc_threshold(1);
        assert_eq!(a.stats().pooled, 0);
        let p = a.alloc(5u64);
        a.retire(p);
        a.collect();
        let s = a.stats();
        // Either still pending (another test's guard) or sitting in the
        // pool; the two states partition the retired object.
        assert_eq!(s.pooled + s.pending, 1, "{s:?}");
        if s.pooled == 1 {
            let q = a.alloc(6u64);
            assert_eq!(a.stats().pooled, 0, "allocation drains the pool");
            // SAFETY: q is exclusively owned.
            unsafe { dealloc_now(q) };
        }
    }

    #[test]
    fn zero_sized_layout_does_not_crash() {
        let mut a = SsmemAllocator::new();
        let layout = Layout::from_size_align(0, 1).unwrap();
        let p = a.alloc_raw(layout);
        assert!(!p.is_null());
        a.retire_raw(p, Layout::from_size_align(1, 1).unwrap());
        a.collect();
    }
}
