//! # ascylib-sync — locking and low-level synchronization substrate
//!
//! This crate provides the synchronization primitives used by the
//! [ASCYLIB-RS](https://example.com/ascylib-rs) concurrent search data
//! structures, mirroring the lock implementations shipped with the original
//! ASCYLIB C library from the ASPLOS'15 paper *"Asynchronized Concurrency:
//! The Secret to Scaling Concurrent Search Data Structures"*:
//!
//! * [`TasLock`] / [`TtasLock`] — test-and-set and test-and-test-and-set spin
//!   locks (the per-node locks used by the `lazy` and `pugh` lists).
//! * [`TicketLock`] — a FIFO ticket lock (used by the `coupling` list and the
//!   per-bucket hash-table locks).
//! * [`TreeLock`] — the *versioned* ticket lock pair used by BST-TK: two
//!   32-bit ticket locks (left/right child edges) packed in one 64-bit word,
//!   with `try_lock_*_at` operations that only succeed if the lock version is
//!   still the one observed during the optimistic parse phase.
//! * [`RwSpinLock`] — a reader-writer spin lock (used by the TBB-style hash
//!   table substitute).
//! * [`McsLock`] — a queue-based MCS lock, provided for completeness and used
//!   by the lock ablation benchmarks.
//! * [`Backoff`] — bounded exponential back-off.
//! * [`CachePadded`] — re-exported from `crossbeam-utils`, plus the
//!   [`CACHE_LINE_SIZE`] constant used to size CLHT buckets.
//!
//! All locks are *raw*: they protect data by convention (the data structures
//! embed them inside nodes), so the basic interface is `lock`/`unlock` on
//! `&self`. RAII guards are provided where they fit naturally.
//!
//! # Example
//!
//! ```
//! use ascylib_sync::TicketLock;
//!
//! let lock = TicketLock::new();
//! lock.lock();
//! // ... critical section ...
//! lock.unlock();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backoff;
pub mod mcs;
pub mod rw;
pub mod tas;
pub mod ticket;
pub mod versioned;

pub use backoff::Backoff;
pub use crossbeam_utils::CachePadded;
pub use mcs::McsLock;
pub use rw::RwSpinLock;
pub use tas::{TasLock, TtasLock};
pub use ticket::TicketLock;
pub use versioned::{TreeLock, TreeLockSnapshot};

/// Size, in bytes, of a cache line on the platforms targeted by ASCYLIB.
///
/// CLHT sizes its buckets to exactly one cache line (8 × 64-bit words) so
/// that most operations complete with at most one cache-line transfer.
pub const CACHE_LINE_SIZE: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::UnsafeCell;
    use std::sync::Arc;

    #[test]
    fn cache_line_is_eight_words() {
        assert_eq!(CACHE_LINE_SIZE, 8 * std::mem::size_of::<u64>());
    }

    /// A deliberately non-atomic counter: if the lock under test ever admits
    /// two threads at once, increments are lost and the total comes up short
    /// (or tsan/miri would flag the race outright).
    struct RacyCounter(UnsafeCell<u64>);

    // SAFETY: the tests only touch the cell while holding the lock under test.
    unsafe impl Send for RacyCounter {}
    // SAFETY: see above.
    unsafe impl Sync for RacyCounter {}

    const THREADS: usize = 4;
    const INCREMENTS: u64 = 20_000;

    /// Runs 4 threads that each bump the shared counter `INCREMENTS` times
    /// inside the provided critical section, then checks nothing was lost.
    fn exercise_mutual_exclusion<F>(critical: F)
    where
        F: Fn(&RacyCounter) + Send + Sync + 'static,
    {
        let counter = Arc::new(RacyCounter(UnsafeCell::new(0)));
        let critical = Arc::new(critical);
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let counter = Arc::clone(&counter);
                let critical = Arc::clone(&critical);
                std::thread::spawn(move || {
                    for _ in 0..INCREMENTS {
                        critical(&counter);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all threads joined; no concurrent access remains.
        let total = unsafe { *counter.0.get() };
        assert_eq!(total, THREADS as u64 * INCREMENTS);
    }

    /// Bumps the counter; caller must already hold the protecting lock.
    fn bump(c: &RacyCounter) {
        // SAFETY: guaranteed exclusive by the lock held by the caller.
        unsafe { *c.0.get() += 1 };
    }

    #[test]
    fn tas_lock_guards_counter_under_contention() {
        let lock = Arc::new(TasLock::new());
        exercise_mutual_exclusion(move |c| {
            lock.lock();
            bump(c);
            lock.unlock();
        });
    }

    #[test]
    fn ttas_lock_guards_counter_under_contention() {
        let lock = Arc::new(TtasLock::new());
        exercise_mutual_exclusion(move |c| {
            lock.lock();
            bump(c);
            lock.unlock();
        });
    }

    #[test]
    fn ticket_lock_guards_counter_under_contention() {
        let lock = Arc::new(TicketLock::new());
        exercise_mutual_exclusion(move |c| {
            lock.lock();
            bump(c);
            lock.unlock();
        });
    }

    #[test]
    fn mcs_lock_guards_counter_under_contention() {
        let lock = Arc::new(McsLock::new());
        exercise_mutual_exclusion(move |c| {
            let guard = lock.lock();
            bump(c);
            drop(guard);
        });
    }

    #[test]
    fn rw_lock_write_side_guards_counter_under_contention() {
        let lock = Arc::new(RwSpinLock::new());
        exercise_mutual_exclusion(move |c| {
            lock.write_lock();
            bump(c);
            lock.write_unlock();
        });
    }

    #[test]
    fn tree_lock_guards_counter_under_contention() {
        let lock = Arc::new(TreeLock::new());
        exercise_mutual_exclusion(move |c| {
            loop {
                let snap = lock.snapshot();
                if snap.is_unlocked(versioned::Side::Left)
                    && lock.try_lock(versioned::Side::Left, &snap)
                {
                    break;
                }
                std::hint::spin_loop();
            }
            bump(c);
            lock.unlock(versioned::Side::Left);
        });
    }

    #[test]
    fn locks_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TasLock>();
        assert_send_sync::<TtasLock>();
        assert_send_sync::<TicketLock>();
        assert_send_sync::<TreeLock>();
        assert_send_sync::<RwSpinLock>();
        assert_send_sync::<McsLock>();
    }
}
