//! # ascylib-sync — locking and low-level synchronization substrate
//!
//! This crate provides the synchronization primitives used by the
//! [ASCYLIB-RS](https://example.com/ascylib-rs) concurrent search data
//! structures, mirroring the lock implementations shipped with the original
//! ASCYLIB C library from the ASPLOS'15 paper *"Asynchronized Concurrency:
//! The Secret to Scaling Concurrent Search Data Structures"*:
//!
//! * [`TasLock`] / [`TtasLock`] — test-and-set and test-and-test-and-set spin
//!   locks (the per-node locks used by the `lazy` and `pugh` lists).
//! * [`TicketLock`] — a FIFO ticket lock (used by the `coupling` list and the
//!   per-bucket hash-table locks).
//! * [`TreeLock`] — the *versioned* ticket lock pair used by BST-TK: two
//!   32-bit ticket locks (left/right child edges) packed in one 64-bit word,
//!   with `try_lock_*_at` operations that only succeed if the lock version is
//!   still the one observed during the optimistic parse phase.
//! * [`RwSpinLock`] — a reader-writer spin lock (used by the TBB-style hash
//!   table substitute).
//! * [`McsLock`] — a queue-based MCS lock, provided for completeness and used
//!   by the lock ablation benchmarks.
//! * [`Backoff`] — bounded exponential back-off.
//! * [`CachePadded`] — re-exported from `crossbeam-utils`, plus the
//!   [`CACHE_LINE_SIZE`] constant used to size CLHT buckets.
//!
//! All locks are *raw*: they protect data by convention (the data structures
//! embed them inside nodes), so the basic interface is `lock`/`unlock` on
//! `&self`. RAII guards are provided where they fit naturally.
//!
//! # Example
//!
//! ```
//! use ascylib_sync::TicketLock;
//!
//! let lock = TicketLock::new();
//! lock.lock();
//! // ... critical section ...
//! lock.unlock();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backoff;
pub mod mcs;
pub mod rw;
pub mod tas;
pub mod ticket;
pub mod versioned;

pub use backoff::Backoff;
pub use crossbeam_utils::CachePadded;
pub use mcs::McsLock;
pub use rw::RwSpinLock;
pub use tas::{TasLock, TtasLock};
pub use ticket::TicketLock;
pub use versioned::{TreeLock, TreeLockSnapshot};

/// Size, in bytes, of a cache line on the platforms targeted by ASCYLIB.
///
/// CLHT sizes its buckets to exactly one cache line (8 × 64-bit words) so
/// that most operations complete with at most one cache-line transfer.
pub const CACHE_LINE_SIZE: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_line_is_eight_words() {
        assert_eq!(CACHE_LINE_SIZE, 8 * std::mem::size_of::<u64>());
    }

    #[test]
    fn locks_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TasLock>();
        assert_send_sync::<TtasLock>();
        assert_send_sync::<TicketLock>();
        assert_send_sync::<TreeLock>();
        assert_send_sync::<RwSpinLock>();
        assert_send_sync::<McsLock>();
    }
}
