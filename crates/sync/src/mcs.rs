//! MCS queue lock.
//!
//! A classic queue-based spin lock: each contending thread spins on its own
//! queue node, so a hand-off causes exactly one cache-line transfer. Included
//! for the lock ablation benchmarks (ticket vs TAS vs MCS in BST-TK-style
//! update paths); the CSDS algorithms themselves embed the smaller locks.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// A node in the MCS queue. One is allocated per acquisition.
#[derive(Debug)]
struct McsNode {
    locked: AtomicBool,
    next: AtomicPtr<McsNode>,
}

/// An MCS queue lock.
///
/// Acquisition returns an [`McsGuard`]; dropping the guard releases the lock.
///
/// # Example
///
/// ```
/// use ascylib_sync::McsLock;
///
/// let lock = McsLock::new();
/// {
///     let _guard = lock.lock();
///     // critical section
/// }
/// assert!(!lock.is_locked());
/// ```
#[derive(Debug)]
pub struct McsLock {
    tail: AtomicPtr<McsNode>,
}

/// RAII guard returned by [`McsLock::lock`]; releases the lock when dropped.
#[derive(Debug)]
pub struct McsGuard<'a> {
    lock: &'a McsLock,
    node: *mut McsNode,
}

// SAFETY: the guard only releases the queue node it owns; moving it across
// threads would be unusual but is sound because the node pointer is private
// to this acquisition.
unsafe impl Send for McsGuard<'_> {}

impl McsLock {
    /// Creates a new, unlocked MCS lock.
    #[inline]
    pub const fn new() -> Self {
        Self { tail: AtomicPtr::new(ptr::null_mut()) }
    }

    /// Acquires the lock, spinning on a private queue node until the
    /// predecessor hands it over.
    pub fn lock(&self) -> McsGuard<'_> {
        let node = Box::into_raw(Box::new(McsNode {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` was placed in the queue by its owner and is not
            // freed until that owner's guard drops, which cannot happen until
            // it has handed the lock to us (it must observe `next`).
            unsafe {
                (*prev).next.store(node, Ordering::Release);
                while (*node).locked.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            }
        }
        McsGuard { lock: self, node }
    }

    /// Returns `true` if some thread currently holds or waits for the lock.
    #[inline]
    pub fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for McsGuard<'_> {
    fn drop(&mut self) {
        let node = self.node;
        // SAFETY: `node` was allocated by `lock` and is exclusively owned by
        // this guard until released below.
        unsafe {
            let next = (*node).next.load(Ordering::Acquire);
            if next.is_null() {
                // No known successor: try to swing the tail back to null.
                if self
                    .lock
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    drop(Box::from_raw(node));
                    return;
                }
                // A successor is in the middle of enqueueing; wait for it.
                let mut next = (*node).next.load(Ordering::Acquire);
                while next.is_null() {
                    std::hint::spin_loop();
                    next = (*node).next.load(Ordering::Acquire);
                }
                (*next).locked.store(false, Ordering::Release);
            } else {
                (*next).locked.store(false, Ordering::Release);
            }
            drop(Box::from_raw(node));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic_lock_unlock() {
        let l = McsLock::new();
        assert!(!l.is_locked());
        {
            let _g = l.lock();
            assert!(l.is_locked());
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    let _g = lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
    }
}
