//! A reader-writer spin lock.
//!
//! Used by the TBB-style hash table substitute (`hashtable::tbb`), which in
//! the paper relies on Intel Thread Building Blocks' reader-writer bucket
//! locks. Readers share the lock; writers get exclusive access.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::Backoff;

/// Bit set in the state word while a writer holds the lock.
const WRITER: u32 = 1 << 31;

/// A word-sized reader-writer spin lock (readers count in the low bits, one
/// writer bit in the MSB).
///
/// # Example
///
/// ```
/// use ascylib_sync::RwSpinLock;
///
/// let lock = RwSpinLock::new();
/// lock.read_lock();
/// lock.read_lock();       // multiple readers are fine
/// assert!(!lock.try_write_lock());
/// lock.read_unlock();
/// lock.read_unlock();
/// assert!(lock.try_write_lock());
/// lock.write_unlock();
/// ```
#[derive(Debug)]
pub struct RwSpinLock {
    state: AtomicU32,
}

impl RwSpinLock {
    /// Creates a new, unlocked reader-writer lock.
    #[inline]
    pub const fn new() -> Self {
        Self { state: AtomicU32::new(0) }
    }

    /// Acquires the lock in shared (read) mode.
    #[inline]
    pub fn read_lock(&self) {
        let mut backoff = Backoff::new();
        loop {
            let state = self.state.load(Ordering::Relaxed);
            if state & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(state, state + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            backoff.spin();
            if backoff.is_saturated() {
                std::thread::yield_now();
            }
        }
    }

    /// Attempts to acquire the lock in shared mode without spinning.
    #[inline]
    pub fn try_read_lock(&self) -> bool {
        let state = self.state.load(Ordering::Relaxed);
        state & WRITER == 0
            && self
                .state
                .compare_exchange(state, state + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Releases a shared acquisition.
    #[inline]
    pub fn read_unlock(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }

    /// Acquires the lock in exclusive (write) mode.
    #[inline]
    pub fn write_lock(&self) {
        let mut backoff = Backoff::new();
        while !self.try_write_lock() {
            backoff.spin();
            if backoff.is_saturated() {
                std::thread::yield_now();
            }
        }
    }

    /// Attempts to acquire the lock in exclusive mode without spinning.
    #[inline]
    pub fn try_write_lock(&self) -> bool {
        self.state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Releases an exclusive acquisition.
    #[inline]
    pub fn write_unlock(&self) {
        self.state.store(0, Ordering::Release);
    }

    /// Number of readers currently holding the lock.
    #[inline]
    pub fn readers(&self) -> u32 {
        self.state.load(Ordering::Relaxed) & !WRITER
    }

    /// Returns `true` if a writer currently holds the lock.
    #[inline]
    pub fn is_write_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) & WRITER != 0
    }
}

impl Default for RwSpinLock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn readers_share_writers_exclude() {
        let l = RwSpinLock::new();
        l.read_lock();
        assert!(l.try_read_lock());
        assert_eq!(l.readers(), 2);
        assert!(!l.try_write_lock());
        l.read_unlock();
        l.read_unlock();
        assert!(l.try_write_lock());
        assert!(l.is_write_locked());
        assert!(!l.try_read_lock());
        l.write_unlock();
        assert!(!l.is_write_locked());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let lock = Arc::new(RwSpinLock::new());
        let data = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4 {
            let lock = Arc::clone(&lock);
            let data = Arc::clone(&data);
            handles.push(thread::spawn(move || {
                for i in 0..5_000u64 {
                    if (t + i) % 4 == 0 {
                        lock.write_lock();
                        let v = data.load(Ordering::Relaxed);
                        data.store(v + 1, Ordering::Relaxed);
                        lock.write_unlock();
                    } else {
                        lock.read_lock();
                        let _ = data.load(Ordering::Relaxed);
                        lock.read_unlock();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(data.load(Ordering::Relaxed), 4 * 5_000 / 4);
    }
}
