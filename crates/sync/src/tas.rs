//! Test-and-set and test-and-test-and-set spin locks.
//!
//! These are the per-node locks used by the `lazy` and `pugh` linked lists
//! and by several other hybrid lock-based structures in ASCYLIB. They are a
//! single byte wide so that embedding one in every node does not blow up the
//! node footprint (ASCY4 cares about the number of cache lines touched per
//! update).

use std::sync::atomic::{AtomicU8, Ordering};

use crate::Backoff;

const UNLOCKED: u8 = 0;
const LOCKED: u8 = 1;

/// A test-and-set spin lock.
///
/// Every acquisition attempt performs an atomic swap, which always generates
/// a cache-line transfer; prefer [`TtasLock`] under contention.
///
/// # Example
///
/// ```
/// use ascylib_sync::TasLock;
///
/// let lock = TasLock::new();
/// assert!(lock.try_lock());
/// assert!(!lock.try_lock());
/// lock.unlock();
/// assert!(lock.try_lock());
/// # lock.unlock();
/// ```
#[derive(Debug)]
pub struct TasLock {
    state: AtomicU8,
}

impl TasLock {
    /// Creates a new, unlocked lock.
    #[inline]
    pub const fn new() -> Self {
        Self { state: AtomicU8::new(UNLOCKED) }
    }

    /// Attempts to acquire the lock without spinning.
    ///
    /// Returns `true` if the lock was acquired.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.state.swap(LOCKED, Ordering::Acquire) == UNLOCKED
    }

    /// Acquires the lock, spinning (with back-off) until it is available.
    #[inline]
    pub fn lock(&self) {
        let mut backoff = Backoff::new();
        while !self.try_lock() {
            backoff.spin();
            if backoff.is_saturated() {
                std::thread::yield_now();
            }
        }
    }

    /// Releases the lock.
    ///
    /// Calling this when the lock is not held leaves the lock unlocked; the
    /// data structures in ASCYLIB only ever unlock locks they hold.
    #[inline]
    pub fn unlock(&self) {
        self.state.store(UNLOCKED, Ordering::Release);
    }

    /// Returns `true` if the lock is currently held by some thread.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) == LOCKED
    }
}

impl Default for TasLock {
    fn default() -> Self {
        Self::new()
    }
}

/// A test-and-test-and-set spin lock.
///
/// Spins on a plain load until the lock looks free, and only then attempts
/// the atomic swap. This reduces coherence traffic compared to [`TasLock`]
/// while keeping the same single-byte footprint.
///
/// # Example
///
/// ```
/// use ascylib_sync::TtasLock;
///
/// let lock = TtasLock::new();
/// lock.lock();
/// assert!(lock.is_locked());
/// lock.unlock();
/// assert!(!lock.is_locked());
/// ```
#[derive(Debug)]
pub struct TtasLock {
    state: AtomicU8,
}

impl TtasLock {
    /// Creates a new, unlocked lock.
    #[inline]
    pub const fn new() -> Self {
        Self { state: AtomicU8::new(UNLOCKED) }
    }

    /// Attempts to acquire the lock once (load-then-swap).
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.state.load(Ordering::Relaxed) == UNLOCKED
            && self.state.swap(LOCKED, Ordering::Acquire) == UNLOCKED
    }

    /// Acquires the lock, spinning on a read until it becomes available.
    #[inline]
    pub fn lock(&self) {
        let mut backoff = Backoff::new();
        loop {
            while self.state.load(Ordering::Relaxed) == LOCKED {
                backoff.spin();
                if backoff.is_saturated() {
                    std::thread::yield_now();
                }
            }
            if self.state.swap(LOCKED, Ordering::Acquire) == UNLOCKED {
                return;
            }
        }
    }

    /// Releases the lock.
    #[inline]
    pub fn unlock(&self) {
        self.state.store(UNLOCKED, Ordering::Release);
    }

    /// Returns `true` if the lock is currently held by some thread.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) == LOCKED
    }
}

impl Default for TtasLock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn tas_basic() {
        let l = TasLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn ttas_basic() {
        let l = TtasLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        l.lock();
        l.unlock();
        assert!(!l.is_locked());
    }

    fn hammer_counter<L, F, G>(lock: Arc<L>, lock_fn: F, unlock_fn: G) -> u64
    where
        L: Send + Sync + 'static,
        F: Fn(&L) + Send + Sync + Copy + 'static,
        G: Fn(&L) + Send + Sync + Copy + 'static,
    {
        use std::sync::atomic::AtomicU64;
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        const THREADS: usize = 4;
        const ITERS: u64 = 10_000;
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..ITERS {
                    lock_fn(&lock);
                    // Non-atomic-looking read-modify-write protected by the lock.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    unlock_fn(&lock);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn tas_provides_mutual_exclusion() {
        hammer_counter(Arc::new(TasLock::new()), TasLock::lock, TasLock::unlock);
    }

    #[test]
    fn ttas_provides_mutual_exclusion() {
        hammer_counter(Arc::new(TtasLock::new()), TtasLock::lock, TtasLock::unlock);
    }
}
