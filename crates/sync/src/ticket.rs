//! FIFO ticket lock.
//!
//! The default lock of the original ASCYLIB library. Acquisition takes a
//! ticket with a fetch-and-add and spins until the "now serving" counter
//! reaches it, giving FIFO fairness with a single word of state.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::Backoff;

/// A FIFO ticket spin lock.
///
/// # Example
///
/// ```
/// use ascylib_sync::TicketLock;
///
/// let lock = TicketLock::new();
/// lock.lock();
/// lock.unlock();
/// assert!(lock.try_lock());
/// lock.unlock();
/// ```
#[derive(Debug)]
pub struct TicketLock {
    /// Next ticket to be handed out.
    next: AtomicU32,
    /// Ticket currently being served.
    serving: AtomicU32,
}

impl TicketLock {
    /// Creates a new, unlocked ticket lock.
    #[inline]
    pub const fn new() -> Self {
        Self { next: AtomicU32::new(0), serving: AtomicU32::new(0) }
    }

    /// Acquires the lock, spinning until this thread's ticket is served.
    #[inline]
    pub fn lock(&self) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            backoff.spin();
            if backoff.is_saturated() {
                std::thread::yield_now();
            }
        }
    }

    /// Attempts to acquire the lock without waiting.
    ///
    /// Succeeds only if no other thread holds or is queued for the lock.
    #[inline]
    pub fn try_lock(&self) -> bool {
        let serving = self.serving.load(Ordering::Acquire);
        self.next
            .compare_exchange(serving, serving.wrapping_add(1), Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Releases the lock, serving the next queued ticket (if any).
    #[inline]
    pub fn unlock(&self) {
        let serving = self.serving.load(Ordering::Relaxed);
        self.serving.store(serving.wrapping_add(1), Ordering::Release);
    }

    /// Returns `true` if the lock is currently held or queued for.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.next.load(Ordering::Relaxed) != self.serving.load(Ordering::Relaxed)
    }

    /// Number of threads currently queued behind the holder (approximate).
    #[inline]
    pub fn queue_length(&self) -> u32 {
        self.next
            .load(Ordering::Relaxed)
            .wrapping_sub(self.serving.load(Ordering::Relaxed))
            .saturating_sub(1)
    }
}

impl Default for TicketLock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic_lock_unlock() {
        let l = TicketLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn queue_length_counts_waiters() {
        let l = TicketLock::new();
        l.lock();
        assert_eq!(l.queue_length(), 0);
        l.unlock();
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
    }
}
