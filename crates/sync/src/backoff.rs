//! Bounded exponential back-off used by the spin locks and by the lock-free
//! algorithms when a CAS fails under contention.

use std::hint;

/// Bounded exponential back-off.
///
/// Starts by spinning a handful of iterations and doubles the spin count on
/// every [`Backoff::spin`] call, up to a fixed ceiling. This mirrors the
/// `pause_rep`/back-off helpers of the original ASCYLIB C code.
///
/// # Example
///
/// ```
/// use ascylib_sync::Backoff;
///
/// let mut backoff = Backoff::new();
/// for _ in 0..4 {
///     backoff.spin();
/// }
/// assert!(backoff.rounds() == 4);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    current: u32,
    rounds: u32,
}

/// Initial number of `spin_loop` hints issued by the first back-off round.
const INITIAL_SPINS: u32 = 4;
/// Maximum number of `spin_loop` hints issued by a single back-off round.
const MAX_SPINS: u32 = 1 << 12;

impl Backoff {
    /// Creates a fresh back-off helper.
    #[inline]
    pub fn new() -> Self {
        Self { current: INITIAL_SPINS, rounds: 0 }
    }

    /// Spins for the current number of iterations and doubles it (bounded).
    #[inline]
    pub fn spin(&mut self) {
        for _ in 0..self.current {
            hint::spin_loop();
        }
        self.current = (self.current * 2).min(MAX_SPINS);
        self.rounds += 1;
    }

    /// Number of times [`Backoff::spin`] has been called.
    #[inline]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Returns `true` once the back-off has reached its maximum spin count,
    /// which callers may use as a hint to yield to the OS scheduler.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.current >= MAX_SPINS
    }

    /// Resets the back-off to its initial state.
    #[inline]
    pub fn reset(&mut self) {
        self.current = INITIAL_SPINS;
        self.rounds = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_saturated() {
        let mut b = Backoff::new();
        assert!(!b.is_saturated());
        for _ in 0..32 {
            b.spin();
        }
        assert!(b.is_saturated());
        assert_eq!(b.rounds(), 32);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut b = Backoff::new();
        b.spin();
        b.spin();
        b.reset();
        assert_eq!(b.rounds(), 0);
        assert!(!b.is_saturated());
    }

    #[test]
    fn default_matches_new() {
        let a = Backoff::new();
        let b = Backoff::default();
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.is_saturated(), b.is_saturated());
    }
}
