//! Versioned ticket locks — the BST-TK locking primitive.
//!
//! BST-TK (§6.2 of the ASCY paper) protects every internal (router) node with
//! *two* small ticket locks, one per child edge, packed together in a single
//! 64-bit word. Each 16-bit ticket lock doubles as a version number: the
//! optimistic parse phase records the version it observed, and the update
//! later tries to acquire *that specific version* of the lock. If a
//! concurrent update has already bumped the version, the acquisition fails
//! and the operation restarts — consolidating the classical
//! "lock, validate, update, increment version" sequence into a single CAS
//! (steps 3+4 and 6+7 of Figure 10 in the paper).

use std::sync::atomic::{AtomicU64, Ordering};

/// Which child edge of a BST-TK router node a lock protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left child edge (low 32 bits of the lock word).
    Left,
    /// The right child edge (high 32 bits of the lock word).
    Right,
}

/// A snapshot of a [`TreeLock`] word taken during the optimistic parse phase.
///
/// The snapshot records the versions of both halves; `try_lock_*` operations
/// only succeed if the corresponding version is still current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeLockSnapshot(u64);

impl TreeLockSnapshot {
    /// Version of the requested half at the time of the snapshot.
    #[inline]
    pub fn version(&self, side: Side) -> u16 {
        half_version(half(self.0, side))
    }

    /// Returns `true` if the requested half was unlocked when snapshotted.
    #[inline]
    pub fn is_unlocked(&self, side: Side) -> bool {
        let h = half(self.0, side);
        half_version(h) == half_ticket(h)
    }

    /// Raw 64-bit value of the snapshot (useful for debugging).
    #[inline]
    pub fn raw(&self) -> u64 {
        self.0
    }
}

#[inline]
fn half(word: u64, side: Side) -> u32 {
    match side {
        Side::Left => word as u32,
        Side::Right => (word >> 32) as u32,
    }
}

#[inline]
fn set_half(word: u64, side: Side, value: u32) -> u64 {
    match side {
        Side::Left => (word & 0xFFFF_FFFF_0000_0000) | u64::from(value),
        Side::Right => (word & 0x0000_0000_FFFF_FFFF) | (u64::from(value) << 32),
    }
}

#[inline]
fn half_version(h: u32) -> u16 {
    h as u16
}

#[inline]
fn half_ticket(h: u32) -> u16 {
    (h >> 16) as u16
}

#[inline]
fn make_half(version: u16, ticket: u16) -> u32 {
    u32::from(version) | (u32::from(ticket) << 16)
}

/// The pair of versioned ticket locks protecting a BST-TK router node.
///
/// The low 32 bits guard the left child pointer and the high 32 bits the
/// right child pointer. Each half holds `{version: u16, ticket: u16}`; the
/// half is unlocked iff `version == ticket`.
///
/// # Example
///
/// ```
/// use ascylib_sync::{TreeLock, versioned::Side};
///
/// let lock = TreeLock::new();
/// let snap = lock.snapshot();
/// assert!(lock.try_lock(Side::Left, &snap));
/// // A second acquisition with the same (now stale) snapshot fails.
/// assert!(!lock.try_lock(Side::Left, &snap));
/// lock.unlock(Side::Left);
/// // After unlock the version has advanced, so the old snapshot still fails.
/// assert!(!lock.try_lock(Side::Left, &snap));
/// let snap2 = lock.snapshot();
/// assert!(lock.try_lock(Side::Left, &snap2));
/// # lock.unlock(Side::Left);
/// ```
#[derive(Debug)]
pub struct TreeLock {
    word: AtomicU64,
}

impl TreeLock {
    /// Creates a new lock pair with both halves unlocked at version 0.
    #[inline]
    pub const fn new() -> Self {
        Self { word: AtomicU64::new(0) }
    }

    /// Takes a snapshot of both lock versions (used by the parse phase).
    #[inline]
    pub fn snapshot(&self) -> TreeLockSnapshot {
        TreeLockSnapshot(self.word.load(Ordering::Acquire))
    }

    /// Tries to acquire one half of the lock *at the version recorded in the
    /// snapshot*.
    ///
    /// Fails (returning `false`) if a concurrent update has locked or
    /// version-bumped that half since the snapshot was taken, in which case
    /// the caller must restart its parse phase.
    pub fn try_lock(&self, side: Side, snap: &TreeLockSnapshot) -> bool {
        let observed_version = snap.version(side);
        let mut current = self.word.load(Ordering::Acquire);
        loop {
            let h = half(current, side);
            if half_version(h) != observed_version || half_ticket(h) != observed_version {
                // Version moved on, or someone holds the lock.
                return false;
            }
            let locked = make_half(observed_version, observed_version.wrapping_add(1));
            let next = set_half(current, side, locked);
            match self.word.compare_exchange_weak(current, next, Ordering::Acquire, Ordering::Acquire) {
                Ok(_) => return true,
                // The CAS may have failed because the *other* half changed;
                // re-examine and retry in that case.
                Err(actual) => current = actual,
            }
        }
    }

    /// Tries to acquire *both* halves atomically at their snapshotted
    /// versions (used by BST-TK removals, which lock two edges).
    pub fn try_lock_both(&self, snap: &TreeLockSnapshot) -> bool {
        let vl = snap.version(Side::Left);
        let vr = snap.version(Side::Right);
        let expected =
            u64::from(make_half(vl, vl)) | (u64::from(make_half(vr, vr)) << 32);
        let locked = u64::from(make_half(vl, vl.wrapping_add(1)))
            | (u64::from(make_half(vr, vr.wrapping_add(1))) << 32);
        self.word
            .compare_exchange(expected, locked, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Releases one half, bumping its version so that concurrent optimistic
    /// parses observe the change.
    pub fn unlock(&self, side: Side) {
        let mut current = self.word.load(Ordering::Relaxed);
        loop {
            let h = half(current, side);
            let ticket = half_ticket(h);
            let released = make_half(ticket, ticket);
            let next = set_half(current, side, released);
            match self.word.compare_exchange_weak(current, next, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Releases both halves (counterpart of [`TreeLock::try_lock_both`]).
    pub fn unlock_both(&self) {
        self.unlock(Side::Left);
        self.unlock(Side::Right);
    }

    /// Reverts a half acquired by [`TreeLock::try_lock`] *without* bumping the
    /// version, used when an update decides to abort after locking.
    pub fn revert(&self, side: Side) {
        let mut current = self.word.load(Ordering::Relaxed);
        loop {
            let h = half(current, side);
            let version = half_version(h);
            let reverted = make_half(version, version);
            let next = set_half(current, side, reverted);
            match self.word.compare_exchange_weak(current, next, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Returns `true` if the given half is currently locked.
    #[inline]
    pub fn is_locked(&self, side: Side) -> bool {
        let h = half(self.word.load(Ordering::Relaxed), side);
        half_version(h) != half_ticket(h)
    }

    /// Current version of the given half.
    #[inline]
    pub fn version(&self, side: Side) -> u16 {
        half_version(half(self.word.load(Ordering::Acquire), side))
    }
}

impl Default for TreeLock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_unlock_bumps_version() {
        let l = TreeLock::new();
        assert_eq!(l.version(Side::Left), 0);
        let s = l.snapshot();
        assert!(l.try_lock(Side::Left, &s));
        assert!(l.is_locked(Side::Left));
        assert!(!l.is_locked(Side::Right));
        l.unlock(Side::Left);
        assert_eq!(l.version(Side::Left), 1);
        assert!(!l.is_locked(Side::Left));
    }

    #[test]
    fn stale_snapshot_fails() {
        let l = TreeLock::new();
        let stale = l.snapshot();
        let s = l.snapshot();
        assert!(l.try_lock(Side::Right, &s));
        l.unlock(Side::Right);
        // Version is now 1; the stale snapshot (version 0) must not acquire.
        assert!(!l.try_lock(Side::Right, &stale));
    }

    #[test]
    fn lock_both_requires_both_versions() {
        let l = TreeLock::new();
        let s = l.snapshot();
        assert!(l.try_lock_both(&s));
        assert!(l.is_locked(Side::Left));
        assert!(l.is_locked(Side::Right));
        l.unlock_both();
        assert!(!l.try_lock_both(&s), "stale snapshot must fail");
        let s2 = l.snapshot();
        assert!(l.try_lock_both(&s2));
        l.unlock_both();
    }

    #[test]
    fn revert_does_not_bump_version() {
        let l = TreeLock::new();
        let s = l.snapshot();
        assert!(l.try_lock(Side::Left, &s));
        l.revert(Side::Left);
        assert_eq!(l.version(Side::Left), 0);
        // The original snapshot is still valid after a revert.
        assert!(l.try_lock(Side::Left, &s));
        l.unlock(Side::Left);
    }

    #[test]
    fn halves_are_independent() {
        let l = TreeLock::new();
        let s = l.snapshot();
        assert!(l.try_lock(Side::Left, &s));
        // Locking the left half must not prevent locking the right half.
        assert!(l.try_lock(Side::Right, &s));
        l.unlock(Side::Left);
        l.unlock(Side::Right);
    }

    #[test]
    fn concurrent_acquisitions_are_exclusive() {
        let lock = Arc::new(TreeLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                let mut acquired = 0u64;
                for _ in 0..20_000 {
                    let snap = lock.snapshot();
                    if lock.try_lock(Side::Left, &snap) {
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.unlock(Side::Left);
                        acquired += 1;
                    }
                }
                acquired
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(counter.load(Ordering::Relaxed), total);
    }
}
